package loadgen

import (
	"context"
	"strings"
	"testing"
	"time"

	"zidian/internal/server"
)

func TestTemplatesMix(t *testing.T) {
	point, setup, err := TemplatesMix("mot", "point")
	if err != nil || len(setup) != 0 || len(point) == 0 {
		t.Fatalf("point: %d templates, %d setup, %v", len(point), len(setup), err)
	}
	nonkey, setup, err := TemplatesMix("mot", "nonkey")
	if err != nil || len(nonkey) == 0 || len(setup) == 0 {
		t.Fatalf("nonkey: %d templates, %d setup, %v", len(nonkey), len(setup), err)
	}
	for _, s := range setup {
		if !strings.HasPrefix(s, "create index") {
			t.Fatalf("setup statement %q is not index DDL", s)
		}
	}
	ranged, setup, err := TemplatesMix("mot", "range")
	if err != nil || len(ranged) == 0 || len(setup) == 0 {
		t.Fatalf("range: %d templates, %d setup, %v", len(ranged), len(setup), err)
	}
	for _, tm := range ranged {
		if tm.Verbs != 2 || !strings.Contains(tm.Format, "between %d and %d") {
			t.Fatalf("range template %q is not a two-verb BETWEEN window", tm.Name)
		}
		if got := tm.ParamSQL(); strings.Count(got, "?") != 2 || strings.Contains(got, "%d") {
			t.Fatalf("range template %q ParamSQL = %q", tm.Name, got)
		}
	}
	mixed, _, err := TemplatesMix("mot", "mixed")
	if err != nil || len(mixed) != len(point)+len(nonkey)+len(ranged) {
		t.Fatalf("mixed: %d templates, want %d, %v", len(mixed), len(point)+len(nonkey)+len(ranged), err)
	}
	if _, _, err := TemplatesMix("mot", "bogus"); err == nil {
		t.Fatal("unknown mix accepted")
	}
	if _, _, err := TemplatesMix("tpch", "nonkey"); err == nil {
		t.Fatal("tpch has no non-key suite; expected an error")
	}
}

// TestRunRangeMix drives the range mix end to end through the wire
// protocol: the setup DDL creates the indexes, every request carries a
// BETWEEN window, and parameterized bounds must reuse one cached template
// per shape.
func TestRunRangeMix(t *testing.T) {
	inst, _, err := server.OpenWorkload("mot", 0.5, 7, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(inst, server.Config{MaxConcurrent: 4, QueueDepth: 64, QueueTimeout: 30 * time.Second})
	tcp, _, err := srv.Start("127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	templates, setup, err := TemplatesMix("mot", "range")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(Options{
		Addr:          tcp,
		Clients:       4,
		Requests:      25,
		Templates:     templates,
		Setup:         setup,
		ParamPool:     10,
		Seed:          1,
		Parameterized: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("range mix finished with %d errors", rep.Errors)
	}
	// One template per shape: after at most len(templates) misses per
	// client warmup, everything hits.
	if rep.CacheHitRate < 0.9 {
		t.Fatalf("parameterized range mix hit rate = %.2f, want >= 0.9", rep.CacheHitRate)
	}
	// The served plans must actually use the range access path.
	plan, err := inst.Explain("select V.vehicle_id, V.color, V.fuel from VEHICLE V where V.year between 2000 and 2002")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "index-range") {
		t.Fatalf("range mix statement not served by IndexRange: %s", plan)
	}
}

// TestReadWriteMixShape checks the mixed suite's contract: reads are plain
// query templates, writes are exec templates whose verbs all derive from
// one unique base id (so concurrent clients never collide) with a paired
// single-verb delete, and the setup is index DDL.
func TestReadWriteMixShape(t *testing.T) {
	reads, writes, setup, err := ReadWriteMix("mot")
	if err != nil || len(reads) == 0 || len(writes) == 0 || len(setup) == 0 {
		t.Fatalf("ReadWriteMix: %d reads, %d writes, %d setup, %v", len(reads), len(writes), len(setup), err)
	}
	for _, r := range reads {
		if r.Write || r.Delete != "" {
			t.Fatalf("read template %q marked as a write", r.Name)
		}
	}
	for _, w := range writes {
		if !w.Write || !strings.HasPrefix(w.Format, "insert into ") {
			t.Fatalf("write template %q is not an INSERT", w.Name)
		}
		if !strings.HasPrefix(w.Delete, "delete from ") || strings.Count(w.Delete, "%d") != 1 {
			t.Fatalf("write template %q has no single-verb paired delete: %q", w.Name, w.Delete)
		}
		for _, a := range w.args(10) {
			if v := a.(int); v != 10 {
				t.Fatalf("write template %q derives verb %d, want the base id", w.Name, v)
			}
		}
	}
	if _, _, _, err := ReadWriteMix("tpch"); err == nil {
		t.Fatal("tpch has no readwrite suite; expected an error")
	}
}

// TestRunReadWriteMix drives the mixed read/write suite end to end through
// the wire protocol at a 50% write fraction and requires zero errors — the
// per-relation locking path under real concurrent INSERT/DELETE traffic.
func TestRunReadWriteMix(t *testing.T) {
	inst, _, err := server.OpenWorkload("mot", 0.3, 7, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(inst, server.Config{MaxConcurrent: 4, QueueDepth: 64, QueueTimeout: 30 * time.Second})
	tcp, _, err := srv.Start("127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	reads, writes, setup, err := ReadWriteMix("mot")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(Options{
		Addr:           tcp,
		Clients:        4,
		Requests:       30,
		Templates:      reads,
		WriteTemplates: writes,
		WriteFraction:  0.5,
		Setup:          setup,
		ParamPool:      10,
		Seed:           1,
		Parameterized:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("readwrite mix finished with %d errors", rep.Errors)
	}
	if rep.Requests != 4*30 {
		t.Fatalf("requests = %d", rep.Requests)
	}
	if rep.Writes == 0 || rep.Writes == rep.Requests {
		t.Fatalf("writes = %d of %d requests; the mix did not mix", rep.Writes, rep.Requests)
	}
}

// TestRunNonKeyMix drives the nonkey mix end to end: the setup DDL creates
// the indexes through the wire protocol, and the run must finish with zero
// errors. Re-running against the same warm server must tolerate the
// already-existing indexes.
func TestRunNonKeyMix(t *testing.T) {
	inst, _, err := server.OpenWorkload("mot", 0.5, 7, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(inst, server.Config{MaxConcurrent: 4, QueueDepth: 64, QueueTimeout: 30 * time.Second})
	tcp, _, err := srv.Start("127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	templates, setup, err := TemplatesMix("mot", "nonkey")
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{
		Addr:      tcp,
		Clients:   4,
		Requests:  20,
		Templates: templates,
		Setup:     setup,
		ParamPool: 10,
		Seed:      1,
	}
	rep, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("nonkey mix finished with %d errors", rep.Errors)
	}
	if rep.Requests != int64(opts.Clients*opts.Requests) {
		t.Fatalf("requests = %d", rep.Requests)
	}
	if got := srv.Cache().Stats(); got.Epoch == 0 {
		t.Fatalf("setup DDL did not advance the cache epoch: %+v", got)
	}
	// Second run against the warm server: indexes already exist and the
	// setup must be tolerated.
	rep, err = Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("warm rerun finished with %d errors", rep.Errors)
	}
}

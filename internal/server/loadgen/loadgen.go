// Package loadgen drives a running zidian server with a repeated-template
// workload over many concurrent wire-protocol connections and reports
// throughput, latency percentiles, and plan-cache effectiveness. It backs
// both the cmd/zidian-loadgen binary and the zidian-bench server experiment
// (BENCH_server.json).
package loadgen

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"zidian/internal/server"
	"zidian/internal/server/client"
)

// Template is one parameterized query shape with exactly one verb in
// Format: %s drawn from the Strings pool when it is non-empty, otherwise %d
// drawn from [0, ParamPool). A bounded pool keeps the set of distinct
// statements small, so a warmed plan cache serves almost every request —
// the repeated-template regime real OLTP-ish workloads live in. With
// Options.Parameterized the verb is replaced by a `?` placeholder and the
// value travels as a wire parameter instead, so every instantiation of the
// template shares one plan-cache entry regardless of the pool size.
type Template struct {
	Name    string
	Format  string
	Strings []string
	// Verbs is the number of %d verbs in Format (default 1). Multi-verb
	// templates drive range predicates: each request draws one base value
	// and derives the following verbs from it (base + Span), so a
	// two-verb BETWEEN template produces a window of fixed width at a
	// random position.
	Verbs int
	// Base offsets drawn numeric values into the template's active domain
	// (e.g. model years start at 1995, not 0).
	Base int
	// Span is the width added per subsequent verb of a multi-verb template.
	Span int
	// Write marks a data-modifying template: Format is an INSERT whose %d
	// verbs (pk and any fk positions, Span 0) all take one globally unique
	// base id per request, sent via exec instead of query.
	Write bool
	// Delete, on a write template, is the paired single-verb DELETE format;
	// the generator occasionally deletes a previously inserted id through
	// it, so the write mix exercises both maintenance directions and the
	// dataset stays roughly stable.
	Delete string
}

// verbs returns the effective verb count.
func (t Template) verbs() int {
	if t.Verbs < 1 {
		return 1
	}
	return t.Verbs
}

// args derives the request's verb values from one drawn base value.
func (t Template) args(base int) []any {
	out := make([]any, t.verbs())
	out[0] = base
	for i := 1; i < len(out); i++ {
		out[i] = base + i*t.Span
	}
	return out
}

// ParamSQL returns the template's `?` form: every literal verb (quoted %s
// or bare %d) replaced by a placeholder.
func (t Template) ParamSQL() string {
	if len(t.Strings) > 0 {
		return strings.Replace(t.Format, "'%s'", "?", 1)
	}
	return strings.ReplaceAll(t.Format, "%d", "?")
}

// Parameter pools for the templates, mirroring the generators' active
// domains (internal/workload).
var (
	tpchRegions = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	tpchNations = []string{
		"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE",
		"GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA",
		"MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA", "SAUDI ARABIA",
		"VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES",
	}
	motMakes = []string{"FORD", "VAUXHALL", "VOLKSWAGEN", "BMW", "TOYOTA", "AUDI",
		"MERCEDES", "NISSAN", "PEUGEOT", "HONDA", "RENAULT", "SKODA"}
	aircaModels = []string{"737-800", "A320", "A321", "E175", "CRJ900", "757-200", "787-9", "A220"}
)

// Templates returns the built-in template suite for a workload dataset.
// All templates are scan-free point/chain lookups — the query class the
// paper's middleware is designed to accelerate.
func Templates(workload string) ([]Template, error) {
	switch workload {
	case "mot":
		return []Template{
			{Name: "vehicle_tests", Format: "select T.test_date, T.result, T.mileage from TEST T where T.vehicle_id = %d"},
			{Name: "vehicle_profile", Format: "select V.make, V.model, T.test_date, T.result from VEHICLE V, TEST T where V.vehicle_id = %d and T.vehicle_id = V.vehicle_id"},
			{Name: "vehicle_speeding", Format: "select O.obs_date, O.speed, O.road_type from OBSERVATION O where O.vehicle_id = %d and O.speed > 70"},
			{Name: "vehicle_test_stats", Format: "select COUNT(*), AVG(T.mileage), MAX(T.defect_count) from TEST T where T.vehicle_id = %d"},
			{Name: "vehicle_history", Format: "select T.test_date, T.result, O.obs_date, O.speed from VEHICLE V, TEST T, OBSERVATION O where V.vehicle_id = %d and T.vehicle_id = V.vehicle_id and O.vehicle_id = V.vehicle_id"},
		}, nil
	case "airca":
		return []Template{
			{Name: "flight_delays", Format: "select F.flight_date, F.dep_delay, D.cause, D.minutes from FLIGHT F, DELAY D where F.flight_id = %d and D.flight_id = F.flight_id"},
			{Name: "carrier_flights", Format: "select F.flight_date, F.dep_delay, F.arr_delay from FLIGHT F where F.carrier_id = %d"},
			{Name: "carrier_fleet", Format: "select A.model, A.manufacturer, A.seats from AIRCRAFT A where A.carrier_id = %d"},
		}, nil
	case "tpch":
		return []Template{
			{Name: "nation_suppliers", Strings: tpchNations,
				Format: "select S.suppkey, S.name, S.acctbal from NATION N, SUPPLIER S where N.name = '%s' and S.nationkey = N.nationkey"},
			{Name: "region_suppliers", Strings: tpchRegions,
				Format: "select S.suppkey, S.name from REGION R, NATION N, SUPPLIER S where R.name = '%s' and N.regionkey = R.regionkey and S.nationkey = N.nationkey"},
			{Name: "nation_volume", Strings: tpchNations,
				Format: "select L.shipmode, SUM(L.extendedprice) from NATION N, SUPPLIER S, LINEITEM L where N.name = '%s' and S.nationkey = N.nationkey and L.suppkey = S.suppkey group by L.shipmode"},
		}, nil
	default:
		return nil, fmt.Errorf("loadgen: no built-in templates for workload %q", workload)
	}
}

// nonKeyTemplates returns the non-key-predicate suite for a workload: each
// template selects on an attribute that is not a block key of any KV
// schema, together with the CREATE INDEX statements that make the queries
// index lookups instead of full scans.
func nonKeyTemplates(workload string) ([]Template, []string, error) {
	switch workload {
	case "mot":
		return []Template{
				{Name: "make_fleet", Strings: motMakes,
					Format: "select V.vehicle_id, V.model, V.fuel from VEHICLE V where V.make = '%s'"},
				{Name: "road_observations",
					Format: "select O.obs_id, O.speed, O.weather from OBSERVATION O where O.road_id = %d"},
			}, []string{
				"create index ix_vehicle_make on VEHICLE(make)",
				"create index ix_obs_road on OBSERVATION(road_id)",
			}, nil
	case "airca":
		return []Template{
				{Name: "model_fleet", Strings: aircaModels,
					Format: "select A.aircraft_id, A.seats, A.carrier_id from AIRCRAFT A where A.model = '%s'"},
			}, []string{
				"create index ix_aircraft_model on AIRCRAFT(model)",
			}, nil
	default:
		return nil, nil, fmt.Errorf("loadgen: no non-key templates for workload %q", workload)
	}
}

// rangeTemplates returns the range-predicate suite for a workload: each
// template is a two-sided BETWEEN window over an indexed non-key attribute,
// served by the IndexRange ordered-posting-scan access path, together with
// the CREATE INDEX statements the windows rely on. Every request draws a
// fresh window position, and with Options.Parameterized both bounds travel
// as wire parameters so one plan-cache template serves every window.
func rangeTemplates(workload string) ([]Template, []string, error) {
	// The selected output attributes deliberately include one column only
	// the relation's pk-keyed full instance covers (color, lane, taxi_out):
	// a narrower non-pk instance covering the whole query would make the
	// planner's cost model — correctly — prefer scanning it over walking
	// the posting range.
	switch workload {
	case "mot":
		return []Template{
				{Name: "year_band", Verbs: 2, Base: 1995, Span: 2,
					Format: "select V.vehicle_id, V.color, V.fuel from VEHICLE V where V.year between %d and %d"},
				{Name: "speed_band", Verbs: 2, Base: 20, Span: 5,
					Format: "select O.obs_id, O.direction, O.lane from OBSERVATION O where O.speed between %d and %d"},
			}, []string{
				"create index ix_vehicle_year on VEHICLE(year)",
				"create index ix_obs_speed on OBSERVATION(speed)",
			}, nil
	case "airca":
		return []Template{
				{Name: "dep_delay_band", Verbs: 2, Base: -15, Span: 10,
					Format: "select F.flight_id, F.taxi_out, F.taxi_in from FLIGHT F where F.dep_delay between %d and %d"},
			}, []string{
				"create index ix_flight_dep_delay on FLIGHT(dep_delay)",
			}, nil
	default:
		return nil, nil, fmt.Errorf("loadgen: no range templates for workload %q", workload)
	}
}

// readWriteTemplates returns the mixed read/write suite for a workload: a
// read side spread across the relations (point and chain lookups plus an
// index-served range, so reads hold shared relation locks of every flavor)
// and a write side of INSERT/DELETE templates over two different relations
// (so writers exercise disjoint write locks, and index posting maintenance
// rides the written relations' locks). The setup DDL creates the index the
// suites rely on. The throughput contrast between Config.GlobalWriteLock
// and per-relation locking on this suite is the PR's headline number.
func readWriteTemplates(workload string) (reads, writes []Template, setup []string, err error) {
	switch workload {
	case "mot":
		// The read side is OLTP-shaped — cheap point and chain lookups, a
		// few storage round trips each — leaning toward VEHICLE, the
		// relation the writers never touch, so per-relation locking has
		// disjoint traffic to overlap; the TEST/OBSERVATION reads keep the
		// conflict path honest. Writes are single-row inserts paired with
		// deletes of earlier inserts: each is a handful of block and
		// posting maintenance round trips — an exclusive window the
		// instance-wide gate charges to every statement, and a
		// per-relation lock charges only to the written relation's.
		reads = []Template{
			{Name: "vehicle_lookup", Format: "select V.make, V.model, V.fuel, V.year from VEHICLE V where V.vehicle_id = %d"},
			{Name: "vehicle_detail", Format: "select V.color, V.region, V.engine_cc from VEHICLE V where V.vehicle_id = %d"},
			{Name: "vehicle_profile", Format: "select V.make, V.model, T.test_date, T.result from VEHICLE V, TEST T where V.vehicle_id = %d and T.vehicle_id = V.vehicle_id"},
			{Name: "test_history", Format: "select T.test_date, T.result, T.mileage from TEST T where T.vehicle_id = %d"},
			{Name: "obs_history", Format: "select O.obs_date, O.speed, O.road_type from OBSERVATION O where O.vehicle_id = %d"},
		}
		// Every insert's keys are derived from the unique base id — fresh
		// blocks per statement on every KV schema (vehicle_by_make_model
		// via the model name, obs_by_region via the region) — so write
		// cost stays O(deg), matching module M4, instead of piling one hot
		// block forever.
		writes = []Template{
			{Name: "write_vehicle", Write: true, Verbs: 3,
				Format: "insert into VEHICLE values (%d, 'ZMAKE', 'ZM-%d', 'PETROL', 'BLACK', 2026, 1600, 'R-%d', 1200, 4, 120, 'BAND-A', '2026-01-15')",
				Delete: "delete from VEHICLE where vehicle_id = %d"},
			{Name: "write_test", Write: true, Verbs: 2,
				Format: "insert into TEST values (%d, %d, 3, '2026-01-15', 'PASS', 52000, 'CLASS-4', 45.50, 35, 0, 1, 0, 77, 'MI')",
				Delete: "delete from TEST where test_id = %d"},
			{Name: "write_obs", Write: true, Verbs: 4,
				Format: "insert into OBSERVATION values (%d, %d, %d, '2026-01-15', 44, 'N', 1, 'DRY', 12, 'R-%d', 9, 0, 2, 1, 'URBAN')",
				Delete: "delete from OBSERVATION where obs_id = %d"},
		}
		// The speed index keeps secondary-index posting maintenance on the
		// OBSERVATION write path, under that relation's lock.
		setup = []string{"create index ix_obs_speed on OBSERVATION(speed)"}
		return reads, writes, setup, nil
	default:
		return nil, nil, nil, fmt.Errorf("loadgen: no read/write templates for workload %q", workload)
	}
}

// ReadWriteMix returns the mixed read/write suite for a workload: the read
// templates, the write templates, and the setup DDL. Pass the reads as
// Options.Templates and the writes as Options.WriteTemplates with a
// WriteFraction.
func ReadWriteMix(workload string) (reads, writes []Template, setup []string, err error) {
	return readWriteTemplates(workload)
}

// TemplatesMix returns the template suite for a workload under a query mix,
// plus the setup statements (DDL) the suite needs once per server:
//
//	point  — the key/chain lookups of Templates (no setup)
//	nonkey — selective non-key predicates served by secondary indexes
//	range  — BETWEEN windows served by ordered posting scans
//	mixed  — all suites interleaved
//
// The readwrite mix does not fit this signature (it adds write templates);
// use ReadWriteMix for it.
func TemplatesMix(workload, mix string) ([]Template, []string, error) {
	switch mix {
	case "", "point":
		t, err := Templates(workload)
		return t, nil, err
	case "nonkey":
		return nonKeyTemplates(workload)
	case "range":
		return rangeTemplates(workload)
	case "mixed":
		point, err := Templates(workload)
		if err != nil {
			return nil, nil, err
		}
		nonkey, setup, err := nonKeyTemplates(workload)
		if err != nil {
			return nil, nil, err
		}
		ranged, rangeSetup, err := rangeTemplates(workload)
		if err != nil {
			return nil, nil, err
		}
		return append(append(point, nonkey...), ranged...), append(setup, rangeSetup...), nil
	default:
		return nil, nil, fmt.Errorf("loadgen: unknown mix %q (want point, nonkey, range or mixed)", mix)
	}
}

// Options parameterize one load-generation run.
type Options struct {
	// Addr is the server's wire-protocol TCP address.
	Addr string
	// Clients is the number of concurrent connections (default 64).
	Clients int
	// Requests is the number of statements each client issues (default 100).
	Requests int
	// Templates is the query template suite (required).
	Templates []Template
	// Setup statements (typically CREATE INDEX DDL) run once on the first
	// connection before load starts. A statement failing because its object
	// already exists is ignored, so re-running against a warm server works.
	Setup []string
	// ParamPool bounds the distinct parameter values per template
	// (default 100). Distinct statements = len(Templates) × ParamPool.
	ParamPool int
	// Seed makes the parameter sequence deterministic.
	Seed int64
	// Parameterized sends each template as a `?` statement with the value
	// as a wire parameter, instead of inlining the literal into the SQL
	// text. One plan-cache entry then serves the whole template.
	Parameterized bool
	// DistinctParams makes every request use a globally unique numeric
	// value (client × request counter) instead of drawing from ParamPool —
	// the distinct-literal regime where literal-inlined caching degrades to
	// ~0% hits. Only meaningful for numeric templates.
	DistinctParams bool
	// WriteTemplates, with WriteFraction > 0, mixes writes into the load:
	// each request flips a coin and, at the write fraction, draws a write
	// template instead of a read. Inserts take a globally unique id
	// (WriteIDBase + client × Requests + request), deletes reclaim ids the
	// same client inserted earlier, so the statements never collide across
	// clients and the mixed run is reproducible.
	WriteTemplates []Template
	// WriteFraction is the probability a request is a write (0..1).
	WriteFraction float64
	// WriteIDBase offsets the unique write ids clear of the generated
	// dataset's pk space (default 1<<21). Reruns against a warm server
	// should vary it to keep inserted pks fresh.
	WriteIDBase int
	// MetricsURL, when non-empty, is the server's /metrics endpoint; the run
	// scrapes it at the end and folds the server-side latency histogram into
	// Report.ServerLatency. Without MetricsStrict, scrape failures are
	// non-fatal: a warning goes to stderr and the field stays nil — a server
	// running with metrics disabled still takes load.
	MetricsURL string
	// MetricsStrict turns a failed MetricsURL scrape into a run error, so CI
	// smoke jobs cannot silently pass against a dead metrics endpoint.
	MetricsStrict bool
}

func (o Options) normalized() Options {
	if o.Clients <= 0 {
		o.Clients = 64
	}
	if o.Requests <= 0 {
		o.Requests = 100
	}
	if o.ParamPool <= 0 {
		o.ParamPool = 100
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.WriteIDBase == 0 {
		o.WriteIDBase = 1 << 21
	}
	return o
}

// Latency summarizes observed latencies in microseconds.
type Latency struct {
	P50 int64 `json:"p50"`
	P90 int64 `json:"p90"`
	P95 int64 `json:"p95"`
	P99 int64 `json:"p99"`
	Max int64 `json:"max"`
}

// Report is the machine-readable outcome of one run: the BENCH_server.json
// payload.
type Report struct {
	Bench       string  `json:"bench"`
	Workload    string  `json:"workload,omitempty"`
	Mix         string  `json:"mix,omitempty"`
	Clients     int     `json:"clients"`
	Requests    int64   `json:"requests"`
	Errors      int64   `json:"errors"`
	WallSeconds float64 `json:"wallSeconds"`
	QPS         float64 `json:"qps"`
	Latency     Latency `json:"latencyMicros"`
	// CacheHitRate is the client-observed fraction of answered queries whose
	// plan came from the server's plan cache.
	CacheHitRate float64 `json:"planCacheHitRate"`
	// ScanFreeRate is the fraction of answered queries with scan-free plans.
	ScanFreeRate float64 `json:"scanFreeRate"`
	// Parameterized records whether statements were sent as `?` templates
	// with wire parameters.
	Parameterized bool `json:"parameterized,omitempty"`
	// Writes counts the data-modifying statements issued; WriteFraction
	// echoes the configured write probability.
	Writes        int64   `json:"writes,omitempty"`
	WriteFraction float64 `json:"writeFraction,omitempty"`
	// PlanCacheHitRateDistinctLiterals is the cache hit rate of the
	// distinct-literal phase run with parameterized statements: every
	// request uses a literal never seen before, and only template reuse can
	// produce hits. PlanCacheHitRateDistinctLiteralsInlined is the same
	// workload with literals inlined into the SQL text — the pre-template
	// baseline, which degrades to ~0%.
	PlanCacheHitRateDistinctLiterals        float64 `json:"planCacheHitRateDistinctLiterals"`
	PlanCacheHitRateDistinctLiteralsInlined float64 `json:"planCacheHitRateDistinctLiteralsInlined"`
	// Server is the server's own statistics snapshot after the run.
	Server *server.ServerStats `json:"server,omitempty"`
	// ServerLatency is the server-side statement latency summary scraped
	// from /metrics (Options.MetricsURL); nil when no URL was given or the
	// scrape failed.
	ServerLatency *ServerLatency `json:"serverLatencyMicros,omitempty"`
	// Speed echoes the replay pacing factor (replay runs only; 0 = as fast
	// as possible).
	Speed float64 `json:"speed,omitempty"`
	// RowDigest is an order-insensitive digest of the result rows of every
	// successful SELECT in a replay run: two replays of the same capture
	// against equal datasets produce equal digests, so byte-identical reads
	// can be asserted without retaining the rows.
	RowDigest string `json:"rowDigest,omitempty"`
}

// Run opens Clients connections, issues Requests statements on each, and
// aggregates the results. Every client first pings so that connection
// failures surface before load starts. Errors do not abort the run; they
// are counted and reported.
func Run(opts Options) (*Report, error) {
	opts = opts.normalized()
	if len(opts.Templates) == 0 {
		return nil, fmt.Errorf("loadgen: no templates")
	}

	clients := make([]*client.Client, opts.Clients)
	for i := range clients {
		c, err := client.Dial(opts.Addr)
		if err != nil {
			for _, prev := range clients[:i] {
				prev.Close()
			}
			return nil, fmt.Errorf("loadgen: dial client %d: %w", i, err)
		}
		if err := c.Ping(); err != nil {
			for _, prev := range clients[:i+1] {
				prev.Close()
			}
			return nil, fmt.Errorf("loadgen: ping client %d: %w", i, err)
		}
		clients[i] = c
	}
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()

	for _, stmt := range opts.Setup {
		if _, err := clients[0].Exec(stmt); err != nil &&
			!strings.Contains(err.Error(), "already") {
			return nil, fmt.Errorf("loadgen: setup %q: %w", stmt, err)
		}
	}

	type workerResult struct {
		lat      []int64
		errs     int64
		hits     int64
		scanFree int64
		answered int64
		writes   int64
	}
	results := make([]workerResult, opts.Clients)
	// Derive each template's `?` form once, outside the timed loop.
	paramSQL := make([]string, len(opts.Templates))
	if opts.Parameterized {
		for i, t := range opts.Templates {
			paramSQL[i] = t.ParamSQL()
		}
	}
	var wg sync.WaitGroup
	start := time.Now()
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c *client.Client) {
			defer wg.Done()
			r := rand.New(rand.NewSource(opts.Seed + int64(i)))
			res := &results[i]
			res.lat = make([]int64, 0, opts.Requests)
			// Per write template, the ids this client has inserted and not
			// yet deleted — the pool its paired deletes reclaim from.
			live := make([][]int, len(opts.WriteTemplates))
			for n := 0; n < opts.Requests; n++ {
				if len(opts.WriteTemplates) > 0 && r.Float64() < opts.WriteFraction {
					wi := r.Intn(len(opts.WriteTemplates))
					wt := opts.WriteTemplates[wi]
					var stmt string
					if wt.Delete != "" && len(live[wi]) > 0 && r.Float64() < 0.3 {
						at := r.Intn(len(live[wi]))
						id := live[wi][at]
						live[wi] = append(live[wi][:at], live[wi][at+1:]...)
						stmt = fmt.Sprintf(wt.Delete, id)
					} else {
						id := opts.WriteIDBase + i*opts.Requests + n
						live[wi] = append(live[wi], id)
						stmt = fmt.Sprintf(wt.Format, wt.args(id)...)
					}
					t0 := time.Now()
					_, err := c.Exec(stmt)
					res.lat = append(res.lat, time.Since(t0).Microseconds())
					res.writes++
					if err != nil {
						res.errs++
					}
					continue
				}
				ti := r.Intn(len(opts.Templates))
				t := opts.Templates[ti]
				var args []any
				switch {
				case len(t.Strings) > 0:
					args = []any{t.Strings[r.Intn(len(t.Strings))]}
				case opts.DistinctParams:
					// Globally unique literal, offset past any ParamPool
					// value another phase may have warmed the cache with.
					args = t.args(1<<20 + i*opts.Requests + n)
				default:
					args = t.args(t.Base + r.Intn(opts.ParamPool))
				}
				var sql string
				var params []any
				if opts.Parameterized {
					sql = paramSQL[ti]
					params = args
				} else {
					sql = fmt.Sprintf(t.Format, args...)
				}
				t0 := time.Now()
				// The lean variant skips decoding the result rows — on a
				// host where generator and server share cores, decoding
				// discarded rows steals measurable capacity from the server.
				stats, err := c.QueryLean(sql, params...)
				res.lat = append(res.lat, time.Since(t0).Microseconds())
				if err != nil {
					res.errs++
					continue
				}
				res.answered++
				if stats != nil {
					if stats.CacheHit {
						res.hits++
					}
					if stats.ScanFree {
						res.scanFree++
					}
				}
			}
		}(i, c)
	}
	wg.Wait()
	wall := time.Since(start)

	var all []int64
	rep := &Report{
		Bench:         "server",
		Clients:       opts.Clients,
		WallSeconds:   wall.Seconds(),
		Parameterized: opts.Parameterized,
		WriteFraction: opts.WriteFraction,
	}
	var answered, hits, scanFree int64
	for i := range results {
		all = append(all, results[i].lat...)
		rep.Requests += int64(len(results[i].lat))
		rep.Errors += results[i].errs
		rep.Writes += results[i].writes
		answered += results[i].answered
		hits += results[i].hits
		scanFree += results[i].scanFree
	}
	if wall > 0 {
		rep.QPS = float64(rep.Requests) / wall.Seconds()
	}
	if answered > 0 {
		rep.CacheHitRate = float64(hits) / float64(answered)
		rep.ScanFreeRate = float64(scanFree) / float64(answered)
	}
	rep.Latency = percentiles(all)

	if st, err := clients[0].Stats(); err == nil {
		rep.Server = st
	}
	if opts.MetricsURL != "" {
		sl, err := ScrapeServerLatency(opts.MetricsURL)
		switch {
		case err == nil:
			rep.ServerLatency = sl
		case opts.MetricsStrict:
			return nil, fmt.Errorf("loadgen: metrics scrape %s: %w", opts.MetricsURL, err)
		default:
			fmt.Fprintf(os.Stderr, "loadgen: warning: metrics scrape %s failed: %v\n", opts.MetricsURL, err)
		}
	}
	return rep, nil
}

// percentiles summarizes a latency sample (µs).
func percentiles(lat []int64) Latency {
	if len(lat) == 0 {
		return Latency{}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	at := func(p float64) int64 {
		i := int(p * float64(len(lat)-1))
		return lat[i]
	}
	return Latency{
		P50: at(0.50),
		P90: at(0.90),
		P95: at(0.95),
		P99: at(0.99),
		Max: lat[len(lat)-1],
	}
}

package loadgen

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"zidian/internal/obs"
)

// ServerLatency is the server-side statement latency summary scraped from
// /metrics after a run: quantiles of the zidian_query_duration_seconds
// histogram merged across verbs. Unlike the client-observed Latency it
// excludes wire and scheduling time outside the server, so the gap between
// the two is the protocol overhead.
type ServerLatency struct {
	Count     int64   `json:"count"`
	P50Micros float64 `json:"p50Micros"`
	P95Micros float64 `json:"p95Micros"`
	P99Micros float64 `json:"p99Micros"`
}

// ScrapeServerLatency fetches a Prometheus-text /metrics page and summarizes
// the zidian_query_duration_seconds histogram, merging buckets across the
// verb label.
func ScrapeServerLatency(metricsURL string) (*ServerLatency, error) {
	hc := http.Client{Timeout: 5 * time.Second}
	resp, err := hc.Get(metricsURL)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: scrape %s: status %s", metricsURL, resp.Status)
	}
	snap, err := parseHistogram(resp.Body, "zidian_query_duration_seconds")
	if err != nil {
		return nil, err
	}
	if snap.Count == 0 {
		return nil, fmt.Errorf("loadgen: scrape %s: histogram empty", metricsURL)
	}
	return &ServerLatency{
		Count:     snap.Count,
		P50Micros: snap.Quantile(0.50) * 1e6,
		P95Micros: snap.Quantile(0.95) * 1e6,
		P99Micros: snap.Quantile(0.99) * 1e6,
	}, nil
}

// parseHistogram reads Prometheus text exposition and reassembles one
// histogram family into an obs.HistSnapshot, summing the cumulative bucket
// counts of every label combination (so a {verb}-labeled family merges into
// one distribution). Only the subset of the format the zidian server emits
// is understood; unknown lines are skipped.
func parseHistogram(r io.Reader, name string) (obs.HistSnapshot, error) {
	var snap obs.HistSnapshot
	cum := map[float64]int64{} // le bound (+Inf as math.Inf) → summed cumulative count
	var infCum, count int64
	var sumSeconds float64
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<22)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		metric, valStr := fields[0], fields[1]
		switch {
		case strings.HasPrefix(metric, name+"_bucket{"):
			le, ok := labelValue(metric, "le")
			if !ok {
				continue
			}
			v, err := strconv.ParseInt(valStr, 10, 64)
			if err != nil {
				continue
			}
			if le == "+Inf" {
				infCum += v
				continue
			}
			bound, err := strconv.ParseFloat(le, 64)
			if err != nil {
				continue
			}
			cum[bound] += v
		case metric == name+"_sum" || strings.HasPrefix(metric, name+"_sum{"):
			v, err := strconv.ParseFloat(valStr, 64)
			if err == nil {
				sumSeconds += v
			}
		case metric == name+"_count" || strings.HasPrefix(metric, name+"_count{"):
			v, err := strconv.ParseInt(valStr, 10, 64)
			if err == nil {
				count += v
			}
		}
	}
	if err := sc.Err(); err != nil {
		return snap, err
	}
	if len(cum) == 0 && infCum == 0 {
		return snap, fmt.Errorf("loadgen: histogram %s not found in scrape", name)
	}
	bounds := make([]float64, 0, len(cum))
	for b := range cum {
		bounds = append(bounds, b)
	}
	sort.Float64s(bounds)
	snap.Bounds = bounds
	snap.Counts = make([]int64, len(bounds)+1)
	var prev int64
	for i, b := range bounds {
		snap.Counts[i] = cum[b] - prev
		prev = cum[b]
	}
	snap.Counts[len(bounds)] = infCum - prev
	snap.Count = count
	snap.SumNanos = int64(sumSeconds * 1e9)
	return snap, nil
}

// labelValue extracts one label's value from a metric{k="v",...} sample name.
func labelValue(metric, key string) (string, bool) {
	open := strings.IndexByte(metric, '{')
	end := strings.LastIndexByte(metric, '}')
	if open < 0 || end < open {
		return "", false
	}
	for _, pair := range strings.Split(metric[open+1:end], ",") {
		k, v, ok := strings.Cut(pair, "=")
		if !ok || k != key {
			continue
		}
		return strings.Trim(v, `"`), true
	}
	return "", false
}

// Workload replay: re-drive a capture file produced by the server's
// -capture sink. Each capture line holds an anonymized statement template
// and the kinds of its bound values — never the values themselves — so
// replay synthesizes deterministic binds per recorded kind and reproduces
// the captured template mix, pacing by the recorded arrival deltas (scaled
// by a speed factor) or as fast as possible.
package loadgen

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"zidian/internal/server"
	"zidian/internal/server/client"
)

// ReadCapture loads a capture file: one JSON CaptureEntry per line.
// Malformed lines are skipped (a capture cut off mid-line by server shutdown
// is still replayable); an empty result is an error. Entries are returned in
// arrival order.
func ReadCapture(path string) ([]server.CaptureEntry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64<<10), 1<<22)
	var entries []server.CaptureEntry
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e server.CaptureEntry
		if err := json.Unmarshal(line, &e); err != nil || e.Template == "" {
			continue
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("loadgen: capture %s holds no replayable entries", path)
	}
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].DTMicros < entries[j].DTMicros })
	return entries, nil
}

// ReplayOptions parameterize one replay run.
type ReplayOptions struct {
	// Addr is the target server's wire-protocol TCP address.
	Addr string
	// Path is the capture file; ignored when Entries is set directly.
	Path string
	// Entries replays a pre-loaded capture (tests, bench harness).
	Entries []server.CaptureEntry
	// Clients bounds the concurrent connections (default 16). Entries of one
	// captured session always replay on one connection, in capture order.
	Clients int
	// Speed scales the recorded arrival deltas: 1 reproduces the captured
	// pacing, 2 replays twice as fast, 0 replays as fast as possible.
	Speed float64
	// Seed makes the synthesized binds deterministic (default 1): two
	// replays of one capture with one seed issue byte-identical statements.
	Seed int64
	// ParamPool bounds the synthesized numeric/string bind domain
	// (default 100), mirroring Options.ParamPool.
	ParamPool int
	// MetricsURL and MetricsStrict behave as in Options.
	MetricsURL    string
	MetricsStrict bool
}

func (o ReplayOptions) normalized() ReplayOptions {
	if o.Clients <= 0 {
		o.Clients = 16
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.ParamPool <= 0 {
		o.ParamPool = 100
	}
	return o
}

// synthBind deterministically synthesizes one bind value for a recorded
// kind: the (seed, statement index, position) triple fully determines the
// value, so a replay is reproducible statement-for-statement.
func synthBind(kind string, seed int64, idx, pos, pool int) any {
	r := rand.New(rand.NewSource(seed + int64(idx)*1000003 + int64(pos)*7919))
	switch kind {
	case "float":
		return float64(r.Intn(pool)) + 0.5
	case "string":
		return fmt.Sprintf("P%d", r.Intn(pool))
	default: // "int", "any"
		return r.Intn(pool)
	}
}

// Replay re-drives a captured workload against a server. Statements of one
// captured session run on one connection in capture order; distinct sessions
// run concurrently across Clients connections. Errors do not abort the run;
// they are counted. The report's RowDigest folds every successful SELECT's
// result rows, so two replays can be compared for byte-identical reads.
func Replay(opts ReplayOptions) (*Report, error) {
	opts = opts.normalized()
	entries := opts.Entries
	if entries == nil {
		var err error
		entries, err = ReadCapture(opts.Path)
		if err != nil {
			return nil, err
		}
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("loadgen: nothing to replay")
	}

	// Partition by captured session, preserving order: session affinity keeps
	// per-connection statement ordering faithful to the original run.
	nClients := opts.Clients
	if nClients > len(entries) {
		nClients = len(entries)
	}
	type job struct {
		idx int // global index into entries, keys the synthesized binds
		e   *server.CaptureEntry
	}
	queues := make([][]job, nClients)
	sessClient := make(map[uint64]int)
	next := 0
	for i := range entries {
		e := &entries[i]
		ci, ok := sessClient[e.Session]
		if !ok {
			ci = next % nClients
			sessClient[e.Session] = ci
			next++
		}
		queues[ci] = append(queues[ci], job{idx: i, e: e})
	}

	clients := make([]*client.Client, nClients)
	for i := range clients {
		c, err := client.Dial(opts.Addr)
		if err != nil {
			for _, prev := range clients[:i] {
				prev.Close()
			}
			return nil, fmt.Errorf("loadgen: dial replay client %d: %w", i, err)
		}
		if err := c.Ping(); err != nil {
			for _, prev := range clients[:i+1] {
				prev.Close()
			}
			return nil, fmt.Errorf("loadgen: ping replay client %d: %w", i, err)
		}
		clients[i] = c
	}
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()

	type workerResult struct {
		lat    []int64
		errs   int64
		digest uint64
	}
	results := make([]workerResult, nClients)
	var wg sync.WaitGroup
	start := time.Now()
	for i := range clients {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := clients[i]
			res := &results[i]
			res.lat = make([]int64, 0, len(queues[i]))
			for _, j := range queues[i] {
				if opts.Speed > 0 {
					due := start.Add(time.Duration(float64(j.e.DTMicros)/opts.Speed) * time.Microsecond)
					if d := time.Until(due); d > 0 {
						time.Sleep(d)
					}
				}
				params := make([]any, len(j.e.Binds))
				for p, kind := range j.e.Binds {
					params[p] = synthBind(kind, opts.Seed, j.idx, p, opts.ParamPool)
				}
				t0 := time.Now()
				if j.e.Verb == "select" {
					cols, rows, _, err := c.Query(j.e.Template, params...)
					res.lat = append(res.lat, time.Since(t0).Microseconds())
					if err != nil {
						res.errs++
						continue
					}
					res.digest ^= rowHash(j.idx, cols, rows)
				} else {
					_, err := c.Exec(j.e.Template, params...)
					res.lat = append(res.lat, time.Since(t0).Microseconds())
					// Replayed DDL routinely collides with objects the
					// original run created; that is not a replay failure.
					if err != nil && !strings.Contains(err.Error(), "already") {
						res.errs++
					}
				}
			}
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)

	var all []int64
	var digest uint64
	rep := &Report{
		Bench:       "replay",
		Clients:     nClients,
		WallSeconds: wall.Seconds(),
		Speed:       opts.Speed,
	}
	for i := range results {
		all = append(all, results[i].lat...)
		rep.Requests += int64(len(results[i].lat))
		rep.Errors += results[i].errs
		digest ^= results[i].digest
	}
	if wall > 0 {
		rep.QPS = float64(rep.Requests) / wall.Seconds()
	}
	rep.Latency = percentiles(all)
	rep.RowDigest = fmt.Sprintf("%016x", digest)

	if st, err := clients[0].Stats(); err == nil {
		rep.Server = st
	}
	if opts.MetricsURL != "" {
		sl, err := ScrapeServerLatency(opts.MetricsURL)
		switch {
		case err == nil:
			rep.ServerLatency = sl
		case opts.MetricsStrict:
			return nil, fmt.Errorf("loadgen: metrics scrape %s: %w", opts.MetricsURL, err)
		default:
			fmt.Fprintf(os.Stderr, "loadgen: warning: metrics scrape %s failed: %v\n", opts.MetricsURL, err)
		}
	}
	return rep, nil
}

// rowHash hashes one SELECT answer, keyed by the statement's global index so
// identical answers to different statements do not cancel under XOR folding.
func rowHash(idx int, cols []string, rows [][]any) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "#%d|", idx)
	for _, c := range cols {
		h.Write([]byte(c))
		h.Write([]byte{0})
	}
	for _, row := range rows {
		for _, v := range row {
			fmt.Fprintf(h, "%v|", v)
		}
		h.Write([]byte{'\n'})
	}
	return h.Sum64()
}

// FetchStatements fetches a server's /stats/statements payload.
func FetchStatements(url string) (*server.StatementsPayload, error) {
	hc := http.Client{Timeout: 5 * time.Second}
	resp, err := hc.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: fetch %s: status %s", url, resp.Status)
	}
	var payload server.StatementsPayload
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		return nil, err
	}
	return &payload, nil
}

package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"zidian/internal/server"
)

// ReplayBenchReport is the BENCH_replay.json payload: the capture phase, the
// replay phase, and the per-template before/after comparison that makes a
// captured workload a regression instrument.
type ReplayBenchReport struct {
	Bench    string  `json:"bench"`
	Workload string  `json:"workload"`
	Captured int     `json:"captured"`
	Capture  *Report `json:"capture"`
	Replay   *Report `json:"replay"`
	// Templates compares each captured template's aggregate between the
	// capture server and the replay server.
	Templates []ReplayTemplateDelta `json:"templates"`
}

// ReplayTemplateDelta is one template's before (capture run) and after
// (replay run) aggregates.
type ReplayTemplateDelta struct {
	Template      string  `json:"template"`
	Verb          string  `json:"verb"`
	CaptureCalls  int64   `json:"captureCalls"`
	ReplayCalls   int64   `json:"replayCalls"`
	CaptureMeanUs float64 `json:"captureMeanUs"`
	ReplayMeanUs  float64 `json:"replayMeanUs"`
	CaptureKVOps  int64   `json:"captureKvOps"`
	ReplayKVOps   int64   `json:"replayKvOps"`
}

// ReplayBenchOptions parameterize the capture→replay experiment.
type ReplayBenchOptions struct {
	// Workload, Scale, Seed, Nodes, Workers shape the served instances.
	Workload string
	Scale    float64
	Seed     int64
	Nodes    int
	Workers  int
	// Clients and Requests shape the capture-phase load.
	Clients  int
	Requests int
	// JSONPath receives the machine-readable report.
	JSONPath string
}

// BenchReplay runs the capture/replay experiment end to end: a server with a
// capture sink takes a loadgen burst, the capture is replayed against a
// fresh server over the same dataset, and the two servers' /stats/statements
// snapshots are compared per template. Identical template sets and matching
// call counts demonstrate that a captured workload is a faithful,
// reproducible bench input.
func BenchReplay(out io.Writer, opts ReplayBenchOptions) error {
	if opts.Clients <= 0 {
		opts.Clients = 16
	}
	if opts.Requests <= 0 {
		opts.Requests = 50
	}
	if opts.Workers <= 0 {
		opts.Workers = 4
	}

	templates, setup, err := TemplatesMix(opts.Workload, "point")
	if err != nil {
		return err
	}

	// Phase 1: capture. The sink is an in-memory buffer — the experiment
	// needs the entries, not a file.
	var captureBuf bytes.Buffer
	startServer := func(capture io.Writer) (*server.Server, string, string, error) {
		inst, _, err := server.OpenWorkload(opts.Workload, opts.Scale, opts.Seed, opts.Nodes, opts.Workers)
		if err != nil {
			return nil, "", "", err
		}
		srv := server.New(inst, server.Config{
			MaxConcurrent: opts.Workers * 2,
			QueueDepth:    4 * opts.Clients,
			QueueTimeout:  30 * time.Second,
			CaptureLog:    capture,
		})
		tcpAddr, httpAddr, err := srv.Start("127.0.0.1:0", "127.0.0.1:0")
		if err != nil {
			return nil, "", "", err
		}
		return srv, tcpAddr, httpAddr, nil
	}
	shutdown := func(srv *server.Server) {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}

	srvA, tcpA, httpA, err := startServer(&captureBuf)
	if err != nil {
		return err
	}
	capRep, err := Run(Options{
		Addr: tcpA, Clients: opts.Clients, Requests: opts.Requests,
		Templates: templates, Setup: setup, Seed: opts.Seed,
		Parameterized: true,
	})
	if err != nil {
		shutdown(srvA)
		return err
	}
	before, err := FetchStatements("http://" + httpA + "/stats/statements")
	shutdown(srvA)
	if err != nil {
		return err
	}

	// Parse the captured stream the same way -replay parses a file.
	entries, err := parseCaptureStream(&captureBuf)
	if err != nil {
		return err
	}

	// Phase 2: replay against a fresh server over the same dataset, as fast
	// as possible — the comparison is per-template work, not pacing.
	srvB, tcpB, httpB, err := startServer(nil)
	if err != nil {
		return err
	}
	repRep, err := Replay(ReplayOptions{
		Addr: tcpB, Entries: entries, Clients: opts.Clients, Seed: opts.Seed,
	})
	if err != nil {
		shutdown(srvB)
		return err
	}
	after, err := FetchStatements("http://" + httpB + "/stats/statements")
	shutdown(srvB)
	if err != nil {
		return err
	}

	report := &ReplayBenchReport{
		Bench:    "replay",
		Workload: opts.Workload,
		Captured: len(entries),
		Capture:  capRep,
		Replay:   repRep,
	}
	type key struct{ template, verb string }
	afterBy := make(map[key]*ReplayTemplateDelta)
	for i := range after.Statements {
		e := &after.Statements[i]
		afterBy[key{e.Template, e.Verb}] = &ReplayTemplateDelta{
			Template: e.Template, Verb: e.Verb,
			ReplayCalls: e.Calls, ReplayMeanUs: e.MeanMicros, ReplayKVOps: e.KVOps,
		}
	}
	for i := range before.Statements {
		e := &before.Statements[i]
		d := afterBy[key{e.Template, e.Verb}]
		if d == nil {
			d = &ReplayTemplateDelta{Template: e.Template, Verb: e.Verb}
			afterBy[key{e.Template, e.Verb}] = d
		}
		d.CaptureCalls = e.Calls
		d.CaptureMeanUs = e.MeanMicros
		d.CaptureKVOps = e.KVOps
	}
	for _, d := range afterBy {
		report.Templates = append(report.Templates, *d)
	}
	sort.Slice(report.Templates, func(i, j int) bool {
		return report.Templates[i].Template < report.Templates[j].Template
	})

	fmt.Fprintf(out, "%-60s %10s %10s %10s %10s\n",
		"replay bench: template", "cap calls", "rep calls", "cap µs", "rep µs")
	for _, d := range report.Templates {
		name := d.Template
		if len(name) > 60 {
			name = name[:57] + "..."
		}
		fmt.Fprintf(out, "%-60s %10d %10d %10.0f %10.0f\n",
			name, d.CaptureCalls, d.ReplayCalls, d.CaptureMeanUs, d.ReplayMeanUs)
	}
	fmt.Fprintf(out, "captured %d statements, replayed %d (%.0f qps), row digest %s\n",
		len(entries), repRep.Requests, repRep.QPS, repRep.RowDigest)

	if opts.JSONPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if err := os.WriteFile(opts.JSONPath, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", opts.JSONPath)
	}
	return nil
}

// parseCaptureStream reads capture lines from an in-memory stream; shared
// shape with ReadCapture's file path.
func parseCaptureStream(r io.Reader) ([]server.CaptureEntry, error) {
	var entries []server.CaptureEntry
	dec := json.NewDecoder(r)
	for dec.More() {
		var e server.CaptureEntry
		if err := dec.Decode(&e); err != nil {
			break
		}
		if e.Template == "" {
			continue
		}
		entries = append(entries, e)
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("loadgen: capture stream holds no replayable entries")
	}
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].DTMicros < entries[j].DTMicros })
	return entries, nil
}

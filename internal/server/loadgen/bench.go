package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"zidian/internal/server"
)

// BenchOptions parameterize one end-to-end serving-layer measurement.
type BenchOptions struct {
	// Workload names the dataset and template suite (mot, airca).
	Workload string
	// Mix selects the query mix: point (default), nonkey, or mixed. Non-key
	// mixes create the secondary indexes their templates rely on before
	// load starts, exercising the IndexLookup access path end to end.
	Mix string
	// Scale, Seed, Nodes, Workers shape the served instance.
	Scale   float64
	Seed    int64
	Nodes   int
	Workers int
	// Clients and Requests shape the generated load.
	Clients  int
	Requests int
	// JSONPath, when non-empty, receives the machine-readable report
	// (the BENCH_server.json tracked across PRs).
	JSONPath string
}

// BenchServer measures the serving layer end to end: it starts an
// in-process zidian server over a generated workload on a loopback TCP
// port, drives it with the repeated-template load generator over many
// concurrent connections, writes the JSON report, and prints a
// human-readable summary on out.
func BenchServer(out io.Writer, opts BenchOptions) error {
	if opts.Clients <= 0 {
		opts.Clients = 64
	}
	if opts.Requests <= 0 {
		opts.Requests = 100
	}
	if opts.Workers <= 0 {
		opts.Workers = 4
	}
	inst, _, err := server.OpenWorkload(opts.Workload, opts.Scale, opts.Seed, opts.Nodes, opts.Workers)
	if err != nil {
		return err
	}
	srv := server.New(inst, server.Config{
		MaxConcurrent: opts.Workers * 2,
		QueueDepth:    4 * opts.Clients,
		QueueTimeout:  30 * time.Second,
	})
	tcpAddr, httpAddr, err := srv.Start("127.0.0.1:0", "127.0.0.1:0")
	if err != nil {
		return err
	}
	metricsURL := "http://" + httpAddr + "/metrics"
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	templates, setup, err := TemplatesMix(opts.Workload, opts.Mix)
	if err != nil {
		return err
	}
	rep, err := Run(Options{
		Addr:       tcpAddr,
		Clients:    opts.Clients,
		Requests:   opts.Requests,
		Templates:  templates,
		Setup:      setup,
		ParamPool:  100,
		Seed:       opts.Seed,
		MetricsURL: metricsURL,
	})
	if err != nil {
		return err
	}
	rep.Workload = opts.Workload
	rep.Mix = opts.Mix

	label := opts.Workload
	if opts.Mix != "" && opts.Mix != "point" {
		label += "/" + opts.Mix
	}
	fmt.Fprintf(out, "%-28s %10s %10s %10s %10s %8s %8s\n",
		"server bench", "qps", "p50µs", "p99µs", "maxµs", "errors", "hit%")
	fmt.Fprintf(out, "%-28s %10.0f %10d %10d %10d %8d %7.1f%%\n",
		fmt.Sprintf("%s ×%d clients", label, opts.Clients),
		rep.QPS, rep.Latency.P50, rep.Latency.P99, rep.Latency.Max,
		rep.Errors, 100*rep.CacheHitRate)
	if sl := rep.ServerLatency; sl != nil {
		fmt.Fprintf(out, "server-side latency (scraped): p50 %.0fµs p95 %.0fµs p99 %.0fµs over %d statements\n",
			sl.P50Micros, sl.P95Micros, sl.P99Micros, sl.Count)
	}

	// Distinct-literal phases: every request carries a literal never seen
	// before, so literal-inlined caching cannot hit and only template reuse
	// can. Phase one inlines (the pre-template baseline, ~0%), phase two
	// parameterizes (one cached template per shape, approaching 100%). Only
	// numeric templates can generate unbounded distinct literals.
	var numeric []Template
	for _, t := range templates {
		if len(t.Strings) == 0 {
			numeric = append(numeric, t)
		}
	}
	if len(numeric) > 0 {
		inlined, err := Run(Options{
			Addr: tcpAddr, Clients: opts.Clients, Requests: opts.Requests,
			Templates: numeric, Seed: opts.Seed + 1, DistinctParams: true,
		})
		if err != nil {
			return err
		}
		parameterized, err := Run(Options{
			Addr: tcpAddr, Clients: opts.Clients, Requests: opts.Requests,
			Templates: numeric, Seed: opts.Seed + 2, DistinctParams: true,
			Parameterized: true,
		})
		if err != nil {
			return err
		}
		rep.PlanCacheHitRateDistinctLiteralsInlined = inlined.CacheHitRate
		rep.PlanCacheHitRateDistinctLiterals = parameterized.CacheHitRate
		// rep.Server stays the main phase's snapshot: its counters track the
		// repeated-template regime across PRs and must not absorb the
		// distinct-literal phases' cache flooding.
		fmt.Fprintf(out, "distinct-literal hit rate: inlined %.1f%% → parameterized %.1f%%\n",
			100*inlined.CacheHitRate, 100*parameterized.CacheHitRate)
	}

	if opts.JSONPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if err := os.WriteFile(opts.JSONPath, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", opts.JSONPath)
	}
	return nil
}

package loadgen

import (
	"context"
	"testing"
	"time"

	"zidian/internal/server"
)

func TestRunAgainstLiveServer(t *testing.T) {
	inst, _, err := server.OpenWorkload("mot", 0.2, 7, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(inst, server.Config{MaxConcurrent: 4, QueueDepth: 64, QueueTimeout: 30 * time.Second})
	tcp, _, err := srv.Start("127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	templates, err := Templates("mot")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(Options{
		Addr:      tcp,
		Clients:   8,
		Requests:  25,
		Templates: templates,
		ParamPool: 10,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 8*25 {
		t.Fatalf("requests = %d, want %d", rep.Requests, 8*25)
	}
	if rep.Errors != 0 {
		t.Fatalf("errors = %d", rep.Errors)
	}
	if rep.QPS <= 0 || rep.Latency.P50 <= 0 || rep.Latency.Max < rep.Latency.P99 {
		t.Fatalf("implausible report: %+v", rep)
	}
	if rep.ScanFreeRate != 1 {
		t.Fatalf("scan-free rate = %g, want 1 (all templates are point lookups)", rep.ScanFreeRate)
	}
	// 5 templates × 10 params = at most 50 distinct statements over 200
	// requests: the cache must serve the bulk of them.
	if rep.CacheHitRate < 0.7 {
		t.Fatalf("cache hit rate = %g", rep.CacheHitRate)
	}
	if rep.Server == nil || rep.Server.Queries != rep.Requests {
		t.Fatalf("server stats: %+v", rep.Server)
	}
	if got := percentiles(nil); got != (Latency{}) {
		t.Fatalf("percentiles(nil) = %+v", got)
	}

	if _, err := Templates("nope"); err == nil {
		t.Fatal("unknown workload should fail")
	}
}

package loadgen

import (
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"zidian/internal/obs"
)

// TestParseHistogramRoundTrip: a {verb}-labeled histogram written in
// Prometheus text parses back into a snapshot equal to the registry's own
// merged view, so scraped quantiles match server-side ones.
func TestParseHistogramRoundTrip(t *testing.T) {
	r := obs.NewRegistry()
	hv := r.NewHistogramVec("zidian_query_duration_seconds", "latency", "verb", nil)
	for i := 1; i <= 50; i++ {
		hv.With("select").Observe(time.Duration(i) * time.Millisecond)
	}
	for i := 1; i <= 10; i++ {
		hv.With("insert").Observe(time.Duration(i) * 10 * time.Millisecond)
	}
	// An unrelated histogram the parser must skip.
	r.NewHistogram("zidian_admission_wait_seconds", "queue", nil).Observe(time.Second)

	var sb strings.Builder
	r.WritePrometheus(&sb)
	got, err := parseHistogram(strings.NewReader(sb.String()), "zidian_query_duration_seconds")
	if err != nil {
		t.Fatal(err)
	}
	want := hv.MergedSnapshot()
	if got.Count != want.Count {
		t.Fatalf("count = %d, want %d", got.Count, want.Count)
	}
	if len(got.Counts) != len(want.Counts) {
		t.Fatalf("bucket count = %d, want %d", len(got.Counts), len(want.Counts))
	}
	for i := range want.Counts {
		if got.Counts[i] != want.Counts[i] {
			t.Fatalf("bucket %d = %d, want %d (got %v want %v)",
				i, got.Counts[i], want.Counts[i], got.Counts, want.Counts)
		}
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if g, w := got.Quantile(q), want.Quantile(q); math.Abs(g-w) > 1e-9 {
			t.Fatalf("q%.0f = %g, want %g", 100*q, g, w)
		}
	}
	// The sum survives the float round trip to within formatting precision.
	if math.Abs(float64(got.SumNanos-want.SumNanos)) > 1e3 {
		t.Fatalf("sumNanos = %d, want ~%d", got.SumNanos, want.SumNanos)
	}
}

func TestParseHistogramMissing(t *testing.T) {
	_, err := parseHistogram(strings.NewReader("# HELP other x\nother_total 3\n"), "zidian_query_duration_seconds")
	if err == nil {
		t.Fatal("expected error for missing family")
	}
}

// TestScrapeServerLatency drives the scraper against a fake /metrics page.
func TestScrapeServerLatency(t *testing.T) {
	r := obs.NewRegistry()
	hv := r.NewHistogramVec("zidian_query_duration_seconds", "latency", "verb", nil)
	for i := 0; i < 100; i++ {
		hv.With("select").Observe(2 * time.Millisecond)
	}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		r.WritePrometheus(w)
	}))
	defer ts.Close()

	sl, err := ScrapeServerLatency(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if sl.Count != 100 {
		t.Fatalf("count = %d, want 100", sl.Count)
	}
	// All observations land in the (1ms, 2.5ms] bucket.
	if sl.P50Micros < 1000 || sl.P50Micros > 2500 {
		t.Fatalf("p50 = %gµs, want within the 1–2.5ms bucket", sl.P50Micros)
	}
	if sl.P99Micros < sl.P50Micros {
		t.Fatal("quantiles not monotone")
	}
}

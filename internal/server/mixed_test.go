package server

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"zidian"
)

// mixedRels are the disjoint relations the concurrent writers own.
var mixedRels = []string{"ACCOUNTS", "ORDERS", "EVENTS"}

// mixedDB builds three structurally identical relations (id pk, tag, num)
// with 90 seed rows each, mapped through pk-keyed full KV schemas.
func mixedDB(t *testing.T) (*zidian.Database, *zidian.BaaVSchema) {
	t.Helper()
	db := zidian.NewDatabase()
	var kvs []zidian.KVSchema
	for _, name := range mixedRels {
		schema := zidian.MustRelSchema(name, []zidian.Attr{
			{Name: "id", Kind: zidian.KindInt},
			{Name: "tag", Kind: zidian.KindString},
			{Name: "num", Kind: zidian.KindInt},
		}, []string{"id"})
		rel := zidian.NewRelation(schema)
		for i := 0; i < 90; i++ {
			rel.MustInsert(zidian.Tuple{
				zidian.Int(int64(i)),
				zidian.String(fmt.Sprintf("T%d", i%9)),
				zidian.Int(int64(i % 45)),
			})
		}
		db.Add(rel)
		kvs = append(kvs, zidian.KVSchema{
			Name: strings.ToLower(name) + "_full", Rel: name,
			Key: []string{"id"}, Val: []string{"tag", "num"},
		})
	}
	bv, err := zidian.NewBaaVSchema(db, kvs...)
	if err != nil {
		t.Fatal(err)
	}
	return db, bv
}

// mixedDDL indexes tag and num on every relation, so the readers exercise
// the IndexLookup and IndexRange access paths while postings churn.
func mixedDDL() []string {
	var out []string
	for _, name := range mixedRels {
		low := strings.ToLower(name)
		out = append(out,
			fmt.Sprintf("create index ix_%s_tag on %s(tag)", low, name),
			fmt.Sprintf("create index ix_%s_num on %s(num)", low, name),
		)
	}
	return out
}

// mixedWriteOps is writer w's deterministic statement sequence over its own
// relation: inserts of fresh ids with occasional deletes of earlier ones.
// The three writers touch disjoint relations, so any concurrent interleaving
// reaches the same final state as replaying the sequences one writer at a
// time.
func mixedWriteOps(w int) []string {
	rel := mixedRels[w]
	var out []string
	var live []int
	for k := 0; k < 40; k++ {
		if k%4 == 3 && len(live) > 0 {
			id := live[0]
			live = live[1:]
			out = append(out, fmt.Sprintf("delete from %s where id = %d", rel, id))
			continue
		}
		id := 1000 + w*1000 + k
		live = append(live, id)
		out = append(out, fmt.Sprintf("insert into %s values (%d, 'W%d', %d)", rel, id, k%5, 50+k%20))
	}
	return out
}

// mixedReadSuite is the differential read set: point, nonkey (IndexLookup),
// range (IndexRange), and an aggregate, per relation.
func mixedReadSuite() []string {
	var out []string
	for _, name := range mixedRels {
		out = append(out,
			fmt.Sprintf("select R.tag, R.num from %s R where R.id = 37", name),
			fmt.Sprintf("select R.id, R.num from %s R where R.tag = 'T4'", name),
			fmt.Sprintf("select R.id, R.tag from %s R where R.num between 10 and 30", name),
			fmt.Sprintf("select R.id from %s R where R.tag = 'W2'", name),
			fmt.Sprintf("select COUNT(*), MAX(R.num) from %s R where R.num >= 0", name),
		)
	}
	return out
}

// renderRows canonicalizes a result for byte comparison.
func renderRows(res *zidian.Result) string {
	res.Sort()
	var b strings.Builder
	b.WriteString(strings.Join(res.Cols, ",") + "\n")
	for _, row := range res.Rows {
		for i, v := range row {
			if i > 0 {
				b.WriteByte('|')
			}
			fmt.Fprintf(&b, "%d:%s", v.Kind, v.String())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// TestConcurrentMixedDifferential runs N writers on disjoint relations
// concurrently with M readers issuing point, nonkey, and range queries —
// through the server's per-relation locking, on all three kv engines — and
// requires the final answers to be byte-identical to a serial replay of the
// same write sequences on a fresh instance. Run with -race, it is also the
// write-path data-race probe.
func TestConcurrentMixedDifferential(t *testing.T) {
	for _, eng := range []string{"hash", "lsm", "sorted"} {
		t.Run(eng, func(t *testing.T) {
			db, bv := mixedDB(t)
			inst, err := zidian.Open(db, bv, zidian.Options{Engine: eng, Nodes: 4, Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			srv := New(inst, Config{MaxConcurrent: 8, QueueDepth: 64})
			ctx := context.Background()
			for _, ddl := range mixedDDL() {
				if _, err := srv.Exec(ctx, ddl); err != nil {
					t.Fatal(err)
				}
			}

			stop := make(chan struct{})
			errs := make(chan error, 64)
			var writers sync.WaitGroup
			for w := range mixedRels {
				writers.Add(1)
				go func(w int) {
					defer writers.Done()
					for _, stmt := range mixedWriteOps(w) {
						if _, err := srv.Exec(ctx, stmt); err != nil {
							select {
							case errs <- fmt.Errorf("writer %d: %q: %w", w, stmt, err):
							default:
							}
							return
						}
					}
				}(w)
			}
			var readers sync.WaitGroup
			suite := mixedReadSuite()
			for r := 0; r < 4; r++ {
				readers.Add(1)
				go func(r int) {
					defer readers.Done()
					for i := r; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						q := suite[i%len(suite)]
						if _, _, _, err := srv.Query(ctx, q); err != nil {
							select {
							case errs <- fmt.Errorf("reader %d: %q: %w", r, q, err):
							default:
							}
							return
						}
					}
				}(r)
			}
			writers.Wait()
			close(stop)
			readers.Wait()
			select {
			case err := <-errs:
				t.Fatal(err)
			default:
			}

			// Serial replay: a fresh instance, the same DDL, then each
			// writer's sequence in full, one after another.
			db2, bv2 := mixedDB(t)
			ref, err := zidian.Open(db2, bv2, zidian.Options{Engine: eng, Nodes: 4, Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			for _, ddl := range mixedDDL() {
				if _, err := ref.Exec(ddl); err != nil {
					t.Fatal(err)
				}
			}
			for w := range mixedRels {
				for _, stmt := range mixedWriteOps(w) {
					if _, err := ref.Exec(stmt); err != nil {
						t.Fatal(err)
					}
				}
			}
			for _, q := range suite {
				got, _, _, err := srv.Query(ctx, q)
				if err != nil {
					t.Fatalf("final %q: %v", q, err)
				}
				want, _, err := ref.Query(q)
				if err != nil {
					t.Fatalf("replay %q: %v", q, err)
				}
				if renderRows(got) != renderRows(want) {
					t.Fatalf("%s: %q diverges from serial replay:\n--- concurrent\n%s--- serial\n%s",
						eng, q, renderRows(got), renderRows(want))
				}
			}
		})
	}
}

// Package client is the Go client for the zidian server's line-delimited
// JSON wire protocol. One Client owns one TCP connection; calls are
// serialized on it (the protocol answers requests in order), so open one
// Client per concurrent worker for parallel load.
package client

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"time"

	"zidian/internal/server"
)

// Client is one wire-protocol connection.
type Client struct {
	conn net.Conn
	out  *bufio.Writer
	enc  *json.Encoder
	sc   *bufio.Scanner
	next int64
}

// Dial connects to a zidian server's TCP address.
func Dial(addr string) (*Client, error) {
	return DialTimeout(addr, 5*time.Second)
}

// DialTimeout connects with a dial timeout.
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	out := bufio.NewWriter(conn)
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64<<10), 1<<24)
	return &Client{conn: conn, out: out, enc: json.NewEncoder(out), sc: sc}, nil
}

// Close closes the connection (and the server-side session with it).
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends one request and reads its response.
func (c *Client) roundTrip(req *server.Request) (*server.Response, error) {
	c.next++
	req.ID = c.next
	if err := c.enc.Encode(req); err != nil {
		return nil, err
	}
	if err := c.out.Flush(); err != nil {
		return nil, err
	}
	if !c.sc.Scan() {
		if err := c.sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("client: connection closed by server")
	}
	var resp server.Response
	if err := json.Unmarshal(c.sc.Bytes(), &resp); err != nil {
		return nil, fmt.Errorf("client: malformed response: %w", err)
	}
	if resp.ID != req.ID {
		return nil, fmt.Errorf("client: response id %d for request %d", resp.ID, req.ID)
	}
	return &resp, nil
}

// ServerError is an ok:false response surfaced as an error. Code carries
// the server's machine-readable class ("queue_timeout", "overloaded",
// "canceled", "statement"); Retryable reports whether the failure is
// backpressure the client should back off and retry rather than a fault in
// the statement itself.
type ServerError struct {
	Msg  string
	Code string
}

// Error returns the server's message.
func (e *ServerError) Error() string { return e.Msg }

// Retryable reports whether the error is transient backpressure.
func (e *ServerError) Retryable() bool {
	return e.Code == "queue_timeout" || e.Code == "overloaded" || e.Code == "canceled"
}

// do round-trips and converts ok:false into a *ServerError.
func (c *Client) do(req *server.Request) (*server.Response, error) {
	resp, err := c.roundTrip(req)
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return resp, &ServerError{Msg: resp.Error, Code: resp.Code}
	}
	return resp, nil
}

// leanResponse mirrors server.Response but leaves the row payload
// undecoded: load generators discard rows, and unmarshalling them into
// [][]any costs more than everything else a bench client does per request.
type leanResponse struct {
	ID    int64              `json:"id"`
	OK    bool               `json:"ok"`
	Error string             `json:"error,omitempty"`
	Code  string             `json:"code,omitempty"`
	Rows  json.RawMessage    `json:"rows,omitempty"`
	Stats *server.QueryStats `json:"stats,omitempty"`
}

// QueryLean runs one SELECT and returns only its execution statistics,
// leaving the rows on the wire undecoded. Use it when the caller needs the
// round trip and the stats but not the data — load generation, warmup,
// liveness probes over real statements.
func (c *Client) QueryLean(sql string, params ...any) (*server.QueryStats, error) {
	raw, err := server.EncodeParams(params)
	if err != nil {
		return nil, err
	}
	req := &server.Request{Op: "query", SQL: sql, Params: raw}
	c.next++
	req.ID = c.next
	if err := c.enc.Encode(req); err != nil {
		return nil, err
	}
	if err := c.out.Flush(); err != nil {
		return nil, err
	}
	if !c.sc.Scan() {
		if err := c.sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("client: connection closed by server")
	}
	var resp leanResponse
	if err := json.Unmarshal(c.sc.Bytes(), &resp); err != nil {
		return nil, fmt.Errorf("client: malformed response: %w", err)
	}
	if resp.ID != req.ID {
		return nil, fmt.Errorf("client: response id %d for request %d", resp.ID, req.ID)
	}
	if !resp.OK {
		return nil, &ServerError{Msg: resp.Error, Code: resp.Code}
	}
	return resp.Stats, nil
}

// Query runs one SELECT and returns columns, rows and execution statistics.
// The statement may carry `?` placeholders bound positionally by params
// (Go integers, floats, strings, or relation.Value).
func (c *Client) Query(sql string, params ...any) (cols []string, rows [][]any, stats *server.QueryStats, err error) {
	raw, err := server.EncodeParams(params)
	if err != nil {
		return nil, nil, nil, err
	}
	resp, err := c.do(&server.Request{Op: "query", SQL: sql, Params: raw})
	if err != nil {
		return nil, nil, nil, err
	}
	return resp.Cols, resp.Rows, resp.Stats, nil
}

// Exec runs any statement. SELECTs return rows; INSERT/DELETE return the
// affected count. `?` placeholders bind positionally from params.
func (c *Client) Exec(sql string, params ...any) (*server.Response, error) {
	raw, err := server.EncodeParams(params)
	if err != nil {
		return nil, err
	}
	return c.do(&server.Request{Op: "exec", SQL: sql, Params: raw})
}

// Prepare compiles a SELECT — possibly a `?` template — under a
// session-scoped name.
func (c *Client) Prepare(name, sql string) error {
	_, err := c.do(&server.Request{Op: "prepare", Name: name, SQL: sql})
	return err
}

// Execute runs a previously prepared SELECT, binding params into its `?`
// placeholders.
func (c *Client) Execute(name string, params ...any) (cols []string, rows [][]any, stats *server.QueryStats, err error) {
	raw, err := server.EncodeParams(params)
	if err != nil {
		return nil, nil, nil, err
	}
	resp, err := c.do(&server.Request{Op: "execute", Name: name, Params: raw})
	if err != nil {
		return nil, nil, nil, err
	}
	return resp.Cols, resp.Rows, resp.Stats, nil
}

// ClosePrepared drops a prepared statement.
func (c *Client) ClosePrepared(name string) error {
	_, err := c.do(&server.Request{Op: "close", Name: name})
	return err
}

// Ping checks liveness.
func (c *Client) Ping() error {
	_, err := c.do(&server.Request{Op: "ping"})
	return err
}

// Stats fetches server-wide statistics.
func (c *Client) Stats() (*server.ServerStats, error) {
	resp, err := c.do(&server.Request{Op: "stats"})
	if err != nil {
		return nil, err
	}
	if resp.Server == nil {
		return nil, fmt.Errorf("client: stats response missing payload")
	}
	return resp.Server, nil
}

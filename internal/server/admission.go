package server

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// Overload errors returned by Admission.Acquire. Clients should treat both
// as retryable backpressure, not statement failures.
var (
	// ErrOverloaded reports that the wait queue itself is full: the server
	// sheds the request immediately rather than queueing it.
	ErrOverloaded = errors.New("server: overloaded, queue full")
	// ErrQueueTimeout reports that the request waited in the queue longer
	// than the admission timeout.
	ErrQueueTimeout = errors.New("server: timed out waiting for an execution slot")
)

// Admission is the server's load-shedding gate: at most Slots statements
// execute concurrently, at most Queue more wait for a slot, and no request
// waits longer than Timeout. Everything beyond that is rejected immediately.
// Bounding both concurrency and queue depth keeps latency predictable under
// overload — the queue converts short bursts into delay, the bound converts
// sustained overload into fast failures the client can back off on.
type Admission struct {
	slots    chan struct{}
	queueMax int64
	timeout  time.Duration

	waiting  atomic.Int64
	inFlight atomic.Int64
	admitted atomic.Int64
	rejected atomic.Int64
	timedOut atomic.Int64
}

// AdmissionStats is a point-in-time snapshot of the gate.
type AdmissionStats struct {
	Slots    int   `json:"slots"`
	InFlight int64 `json:"inFlight"`
	Waiting  int64 `json:"waiting"`
	Admitted int64 `json:"admitted"`
	Rejected int64 `json:"rejected"`
	TimedOut int64 `json:"timedOut"`
}

// NewAdmission builds a gate with the given concurrency, queue depth and
// queue timeout. Non-positive arguments fall back to sane defaults.
func NewAdmission(slots, queue int, timeout time.Duration) *Admission {
	if slots <= 0 {
		slots = 8
	}
	if queue <= 0 {
		queue = 4 * slots
	}
	if timeout <= 0 {
		timeout = time.Second
	}
	return &Admission{
		slots:    make(chan struct{}, slots),
		queueMax: int64(queue),
		timeout:  timeout,
	}
}

// Acquire blocks until an execution slot is free, the queue timeout expires,
// or ctx is done. It fails fast with ErrOverloaded when the wait queue is
// already full. On success the caller must Release exactly once.
func (a *Admission) Acquire(ctx context.Context) error {
	// Fast path: a free slot admits without queueing.
	select {
	case a.slots <- struct{}{}:
		a.admitted.Add(1)
		a.inFlight.Add(1)
		return nil
	default:
	}
	if a.waiting.Add(1) > a.queueMax {
		a.waiting.Add(-1)
		a.rejected.Add(1)
		return ErrOverloaded
	}
	t := time.NewTimer(a.timeout)
	defer t.Stop()
	select {
	case a.slots <- struct{}{}:
		a.waiting.Add(-1)
		a.admitted.Add(1)
		a.inFlight.Add(1)
		return nil
	case <-t.C:
		a.waiting.Add(-1)
		a.timedOut.Add(1)
		return ErrQueueTimeout
	case <-ctx.Done():
		a.waiting.Add(-1)
		a.rejected.Add(1)
		return ctx.Err()
	}
}

// Release frees a slot acquired by Acquire.
func (a *Admission) Release() {
	a.inFlight.Add(-1)
	<-a.slots
}

// Stats snapshots the gate's counters.
func (a *Admission) Stats() AdmissionStats {
	return AdmissionStats{
		Slots:    cap(a.slots),
		InFlight: a.inFlight.Load(),
		Waiting:  a.waiting.Load(),
		Admitted: a.admitted.Load(),
		Rejected: a.rejected.Load(),
		TimedOut: a.timedOut.Load(),
	}
}

package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"zidian/internal/server"
	"zidian/internal/server/client"
	"zidian/internal/server/loadgen"
)

// fetchStatements decodes /stats/statements, failing the test on a non-200.
func fetchStatements(t *testing.T, url string) *server.StatementsPayload {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	var payload server.StatementsPayload
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	return &payload
}

func TestStatementsEndpoint(t *testing.T) {
	_, tcp, httpA := startServer(t, server.Config{MaxConcurrent: 4, QueueDepth: 64, QueueTimeout: 30 * time.Second})
	c, err := client.Dial(tcp)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Five calls of one template (distinct literals), three of another.
	for i := 0; i < 5; i++ {
		if _, _, _, err := c.Query(fmt.Sprintf(testTemplates[0], 910000+i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if _, _, _, err := c.Query(fmt.Sprintf(testTemplates[1], 920000+i)); err != nil {
			t.Fatal(err)
		}
	}

	base := "http://" + httpA + "/stats/statements"
	payload := fetchStatements(t, base)
	if payload.SortedBy != "total_time" {
		t.Fatalf("default sort %q, want total_time", payload.SortedBy)
	}
	if payload.Capacity <= 0 || payload.Tracked <= 0 {
		t.Fatalf("implausible registry shape: %+v", payload)
	}
	var calls0, calls1 int64
	for _, e := range payload.Statements {
		for i := 0; i < 5; i++ {
			if strings.Contains(e.Template, fmt.Sprintf("%d", 910000+i)) ||
				strings.Contains(e.Template, fmt.Sprintf("%d", 920000+i)) {
				t.Fatalf("literal leaked into template %q", e.Template)
			}
		}
		if e.Verb != "select" {
			continue
		}
		switch {
		case strings.HasPrefix(e.Template, "select T.test_date"):
			calls0 = e.Calls
		case strings.HasPrefix(e.Template, "select V.make"):
			calls1 = e.Calls
		}
	}
	if calls0 != 5 || calls1 != 3 {
		t.Fatalf("template calls = %d, %d; want 5, 3", calls0, calls1)
	}

	if top := fetchStatements(t, base+"?top=1"); len(top.Statements) != 1 {
		t.Fatalf("?top=1 returned %d statements", len(top.Statements))
	}
	byCalls := fetchStatements(t, base+"?by=calls")
	for i := 1; i < len(byCalls.Statements); i++ {
		if byCalls.Statements[i].Calls > byCalls.Statements[i-1].Calls {
			t.Fatalf("?by=calls not descending at %d", i)
		}
	}
	for _, bad := range []string{"?by=bogus", "?top=0", "?top=x"} {
		resp, err := http.Get(base + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET %s%s: status %d, want 400", base, bad, resp.StatusCode)
		}
	}
}

func TestShowStatementsWire(t *testing.T) {
	_, tcp, _ := startServer(t, server.Config{MaxConcurrent: 4, QueueDepth: 64, QueueTimeout: 30 * time.Second})
	c, err := client.Dial(tcp)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for i := 0; i < 4; i++ {
		if _, _, _, err := c.Query(fmt.Sprintf(testTemplates[0], i)); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := c.Exec("SHOW STATEMENTS")
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Cols) == 0 || resp.Cols[0] != "template" {
		t.Fatalf("SHOW STATEMENTS cols = %v", resp.Cols)
	}
	col := make(map[string]int, len(resp.Cols))
	for i, name := range resp.Cols {
		col[name] = i
	}
	found := false
	for _, row := range resp.Rows {
		tmpl, _ := row[col["template"]].(string)
		if strings.HasPrefix(tmpl, "select T.test_date") && strings.Contains(tmpl, "T.vehicle_id = ?") {
			found = true
			if calls, _ := row[col["calls"]].(float64); calls != 4 {
				t.Fatalf("calls = %v, want 4", row[col["calls"]])
			}
		}
	}
	if !found {
		t.Fatalf("anonymized template missing from SHOW STATEMENTS rows: %v", resp.Rows)
	}
}

// TestCaptureReplayRoundTrip captures a run, asserts the capture leaks no
// literal, replays it onto fresh servers, and requires (a) the replayed
// server's template set and per-template call counts to match the captured
// server's exactly, and (b) two same-seed replays to produce byte-identical
// read results (equal row digests).
func TestCaptureReplayRoundTrip(t *testing.T) {
	var captureBuf bytes.Buffer
	_, tcpA, httpA := startServer(t, server.Config{
		MaxConcurrent: 4, QueueDepth: 64, QueueTimeout: 30 * time.Second,
		CaptureLog: &captureBuf,
	})
	c, err := client.Dial(tcpA)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, _, _, err := c.Query(fmt.Sprintf(testTemplates[0], 867530+i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		if _, _, _, err := c.Query(fmt.Sprintf(testTemplates[3], i)); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()
	before := fetchStatements(t, "http://"+httpA+"/stats/statements")

	raw := captureBuf.String()
	for i := 0; i < 6; i++ {
		if strings.Contains(raw, fmt.Sprintf("%d", 867530+i)) {
			t.Fatalf("literal leaked into capture stream:\n%s", raw)
		}
	}
	path := filepath.Join(t.TempDir(), "capture.jsonl")
	if err := os.WriteFile(path, []byte(raw), 0o644); err != nil {
		t.Fatal(err)
	}
	entries, err := loadgen.ReadCapture(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 10 {
		t.Fatalf("capture holds %d entries, want 10", len(entries))
	}

	// Replay onto two fresh servers with one seed: template sets and call
	// counts must match the capture, and the digests each other.
	digests := make([]string, 2)
	for r := 0; r < 2; r++ {
		_, tcpB, httpB := startServer(t, server.Config{MaxConcurrent: 4, QueueDepth: 64, QueueTimeout: 30 * time.Second})
		rep, err := loadgen.Replay(loadgen.ReplayOptions{Addr: tcpB, Path: path, Clients: 4, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Requests != int64(len(entries)) || rep.Errors != 0 {
			t.Fatalf("replay %d: %d requests (%d errors), want %d clean", r, rep.Requests, rep.Errors, len(entries))
		}
		digests[r] = rep.RowDigest

		after := fetchStatements(t, "http://"+httpB+"/stats/statements")
		if got, want := templateCalls(after), templateCalls(before); !equalCalls(got, want) {
			t.Fatalf("replayed template calls diverge:\n got %v\nwant %v", got, want)
		}
	}
	if digests[0] != digests[1] {
		t.Fatalf("same-seed replays produced different row digests: %s vs %s", digests[0], digests[1])
	}
	if digests[0] == fmt.Sprintf("%016x", 0) {
		t.Fatal("replay digest is zero — no rows were folded")
	}
}

// templateCalls maps each select template to its call count.
func templateCalls(p *server.StatementsPayload) map[string]int64 {
	out := make(map[string]int64)
	for _, e := range p.Statements {
		if e.Verb == "select" {
			out[e.Template] += e.Calls
		}
	}
	return out
}

func equalCalls(a, b map[string]int64) bool {
	if len(a) != len(b) {
		return false
	}
	keys := make([]string, 0, len(a))
	for k := range a {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if a[k] != b[k] {
			return false
		}
	}
	return true
}

// Package server is the serving layer of the SQL-over-NoSQL middleware: a
// long-lived, concurrent query service wrapping a zidian.Instance.
//
// The paper positions Zidian as middleware between SQL clients and a NoSQL
// store; this package supplies the pieces such a deployment needs beyond
// query compilation itself — connection handling, statement reuse, and load
// shedding:
//
//   - a line-delimited JSON wire protocol over TCP (one Request per line in,
//     one Response per line out, requests served in order per connection),
//   - an HTTP surface (POST/GET /query, GET /healthz, GET /stats),
//   - per-connection sessions with named prepared statements,
//   - a shared, lock-striped plan cache keyed by normalized SQL text so
//     repeated queries skip the parse/check/plan pipeline,
//   - admission control: a bounded number of concurrently executing
//     statements plus a bounded wait queue with a timeout, so overload
//     degrades into fast rejections instead of collapse,
//   - graceful shutdown draining in-flight work.
//
// # Wire protocol
//
// Each request is one JSON object on one line. Fields:
//
//	{"id": 7, "op": "query",   "sql": "select ..."}        run one SELECT
//	{"id": 8, "op": "exec",    "sql": "insert ..."}        run any statement
//	{"id": 9, "op": "prepare", "name": "q1", "sql": "..."} compile + name a SELECT
//	{"id":10, "op": "execute", "name": "q1"}               run a prepared SELECT
//	{"id":11, "op": "close",   "name": "q1"}               drop a prepared SELECT
//	{"id":12, "op": "ping"}                                liveness check
//	{"id":13, "op": "stats"}                               server statistics
//
// Statements may carry `?` placeholders; the params array binds them
// positionally. JSON integers bind as SQL ints, fractions as floats,
// strings as strings:
//
//	{"id":14, "op": "query", "sql": "select V.make from VEHICLE V where V.vehicle_id = ?",
//	 "params": [42]}
//	{"id":15, "op": "prepare", "name": "q2", "sql": "... where V.vehicle_id = ?"}
//	{"id":16, "op": "execute", "name": "q2", "params": [7]}
//
// The response mirrors the id and carries either ok:true with the payload or
// ok:false with an error string:
//
//	{"id":7,"ok":true,"cols":["make","model"],"rows":[["FORD","F-150"]],
//	 "stats":{"scanFree":true,"gets":3,"wallMicros":412,"cacheHit":true}}
package server

import (
	"encoding/json"
	"fmt"
	"strings"

	"zidian/internal/relation"
)

// Request is one client command.
type Request struct {
	// ID is echoed back in the response so clients can match replies.
	ID int64 `json:"id,omitempty"`
	// Op is the command: query, exec, prepare, execute, close, ping, stats.
	Op string `json:"op"`
	// SQL is the statement text for query, exec and prepare.
	SQL string `json:"sql,omitempty"`
	// Name identifies a prepared statement for prepare, execute and close.
	Name string `json:"name,omitempty"`
	// Params binds the statement's `?` placeholders positionally (query,
	// exec, execute). Elements are JSON numbers or strings.
	Params []json.RawMessage `json:"params,omitempty"`
}

// DecodeParams converts a request's raw JSON parameters into SQL values.
// Integral JSON numbers become ints (block keys are routinely ints, and a
// float-typed 42 would encode to a different storage key than the int 42),
// other numbers become floats, JSON strings become strings. Booleans, null,
// arrays and objects are rejected.
func DecodeParams(raw []json.RawMessage) ([]relation.Value, error) {
	if len(raw) == 0 {
		return nil, nil
	}
	out := make([]relation.Value, len(raw))
	for i, r := range raw {
		s := strings.TrimSpace(string(r))
		if s == "" {
			return nil, fmt.Errorf("server: parameter %d is empty", i)
		}
		if s[0] == '"' {
			var v string
			if err := json.Unmarshal(r, &v); err != nil {
				return nil, fmt.Errorf("server: parameter %d: %w", i, err)
			}
			out[i] = relation.String(v)
			continue
		}
		var num json.Number
		if err := json.Unmarshal(r, &num); err != nil {
			return nil, fmt.Errorf("server: parameter %d must be a number or string, got %s", i, s)
		}
		if iv, err := num.Int64(); err == nil {
			out[i] = relation.Int(iv)
			continue
		}
		fv, err := num.Float64()
		if err != nil {
			return nil, fmt.Errorf("server: parameter %d: %w", i, err)
		}
		out[i] = relation.Float(fv)
	}
	return out, nil
}

// EncodeParams converts Go values into wire parameters; the client uses it
// to build requests. Supported kinds: integers, floats, strings, and
// relation.Value.
func EncodeParams(params []any) ([]json.RawMessage, error) {
	if len(params) == 0 {
		return nil, nil
	}
	out := make([]json.RawMessage, len(params))
	for i, p := range params {
		if v, ok := p.(relation.Value); ok {
			p = jsonValue(v)
		}
		switch p.(type) {
		case int, int8, int16, int32, int64, uint, uint8, uint16, uint32, uint64,
			float32, float64, string:
		default:
			return nil, fmt.Errorf("server: unsupported parameter %d type %T", i, p)
		}
		b, err := json.Marshal(p)
		if err != nil {
			return nil, fmt.Errorf("server: parameter %d: %w", i, err)
		}
		out[i] = b
	}
	return out, nil
}

// Response is the reply to one Request.
type Response struct {
	ID int64 `json:"id,omitempty"`
	OK bool  `json:"ok"`
	// Error describes the failure when OK is false.
	Error string `json:"error,omitempty"`
	// Cols and Rows carry a SELECT answer.
	Cols []string `json:"cols,omitempty"`
	Rows [][]any  `json:"rows,omitempty"`
	// Affected is the row count of an INSERT or DELETE.
	Affected int `json:"affected,omitempty"`
	// Stats carries per-query execution statistics for SELECTs.
	Stats *QueryStats `json:"stats,omitempty"`
	// Server carries server-wide statistics for the stats op.
	Server *ServerStats `json:"server,omitempty"`
}

// QueryStats is the wire form of zidian.Stats plus serving-layer fields.
type QueryStats struct {
	ScanFree   bool   `json:"scanFree"`
	Bounded    bool   `json:"bounded"`
	Gets       int64  `json:"gets"`
	DataValues int64  `json:"dataValues"`
	WallMicros int64  `json:"wallMicros"`
	CacheHit   bool   `json:"cacheHit"`
	Plan       string `json:"plan,omitempty"`
}

// ServerStats is the payload of the stats op and the /stats endpoint.
type ServerStats struct {
	UptimeSeconds  float64        `json:"uptimeSeconds"`
	Sessions       int64          `json:"sessions"`
	TotalSessions  int64          `json:"totalSessions"`
	Queries        int64          `json:"queries"`
	Errors         int64          `json:"errors"`
	PlanCache      CacheStats     `json:"planCache"`
	Admission      AdmissionStats `json:"admission"`
	StoreGets      int64          `json:"storeGets"`
	StoreScanNexts int64          `json:"storeScanNexts"`
}

// jsonValue converts a relation value to its natural JSON representation.
func jsonValue(v relation.Value) any {
	switch v.Kind {
	case relation.KindInt:
		return v.Int
	case relation.KindFloat:
		return v.Flt
	case relation.KindString:
		return v.Str
	default:
		return nil
	}
}

// jsonRows converts result tuples to JSON-ready rows.
func jsonRows(rows []relation.Tuple) [][]any {
	out := make([][]any, len(rows))
	for i, r := range rows {
		row := make([]any, len(r))
		for j, v := range r {
			row[j] = jsonValue(v)
		}
		out[i] = row
	}
	return out
}

// NormalizeSQL canonicalizes a statement for plan-cache keying: whitespace
// runs collapse to one space, text outside single-quoted string literals is
// lowercased, and trailing semicolons are dropped. Two spellings of the same
// statement therefore share one cache entry, while literals — which are part
// of the compiled plan — stay significant.
func NormalizeSQL(src string) string {
	var b strings.Builder
	b.Grow(len(src))
	inStr := false
	space := false
	for i := 0; i < len(src); i++ {
		c := src[i]
		if inStr {
			b.WriteByte(c)
			if c == '\'' {
				inStr = false
			}
			continue
		}
		switch {
		case c == '\'':
			if space && b.Len() > 0 {
				b.WriteByte(' ')
			}
			space = false
			inStr = true
			b.WriteByte(c)
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			space = true
		default:
			if space && b.Len() > 0 {
				b.WriteByte(' ')
			}
			space = false
			if 'A' <= c && c <= 'Z' {
				c += 'a' - 'A'
			}
			b.WriteByte(c)
		}
	}
	s := b.String()
	for strings.HasSuffix(s, ";") {
		s = strings.TrimSuffix(s, ";")
		s = strings.TrimRight(s, " ")
	}
	return s
}

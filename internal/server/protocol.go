// Package server is the serving layer of the SQL-over-NoSQL middleware: a
// long-lived, concurrent query service wrapping a zidian.Instance.
//
// The paper positions Zidian as middleware between SQL clients and a NoSQL
// store; this package supplies the pieces such a deployment needs beyond
// query compilation itself — connection handling, statement reuse, and load
// shedding:
//
//   - a line-delimited JSON wire protocol over TCP (one Request per line in,
//     one Response per line out, requests served in order per connection),
//   - an HTTP surface (POST/GET /query, GET /healthz, GET /stats),
//   - per-connection sessions with named prepared statements,
//   - a shared, lock-striped plan cache keyed by normalized SQL text so
//     repeated queries skip the parse/check/plan pipeline,
//   - admission control: a bounded number of concurrently executing
//     statements plus a bounded wait queue with a timeout, so overload
//     degrades into fast rejections instead of collapse,
//   - graceful shutdown draining in-flight work.
//
// # Wire protocol
//
// Each request is one JSON object on one line. Fields:
//
//	{"id": 7, "op": "query",   "sql": "select ..."}        run one SELECT
//	{"id": 8, "op": "exec",    "sql": "insert ..."}        run any statement
//	{"id": 9, "op": "prepare", "name": "q1", "sql": "..."} compile + name a SELECT
//	{"id":10, "op": "execute", "name": "q1"}               run a prepared SELECT
//	{"id":11, "op": "close",   "name": "q1"}               drop a prepared SELECT
//	{"id":12, "op": "ping"}                                liveness check
//	{"id":13, "op": "stats"}                               server statistics
//
// Statements may carry `?` placeholders; the params array binds them
// positionally. JSON integers bind as SQL ints, fractions as floats,
// strings as strings:
//
//	{"id":14, "op": "query", "sql": "select V.make from VEHICLE V where V.vehicle_id = ?",
//	 "params": [42]}
//	{"id":15, "op": "prepare", "name": "q2", "sql": "... where V.vehicle_id = ?"}
//	{"id":16, "op": "execute", "name": "q2", "params": [7]}
//
// The response mirrors the id and carries either ok:true with the payload or
// ok:false with an error string:
//
//	{"id":7,"ok":true,"cols":["make","model"],"rows":[["FORD","F-150"]],
//	 "stats":{"scanFree":true,"gets":3,"wallMicros":412,"cacheHit":true}}
package server

import (
	"encoding/json"
	"fmt"
	"strings"

	"zidian/internal/obs"
	"zidian/internal/relation"
	"zidian/internal/sql"
)

// Request is one client command.
type Request struct {
	// ID is echoed back in the response so clients can match replies.
	ID int64 `json:"id,omitempty"`
	// Op is the command: query, exec, prepare, execute, close, ping, stats.
	Op string `json:"op"`
	// SQL is the statement text for query, exec and prepare.
	SQL string `json:"sql,omitempty"`
	// Name identifies a prepared statement for prepare, execute and close.
	Name string `json:"name,omitempty"`
	// Params binds the statement's `?` placeholders positionally (query,
	// exec, execute). Elements are JSON numbers or strings.
	Params []json.RawMessage `json:"params,omitempty"`
}

// DecodeParams converts a request's raw JSON parameters into SQL values.
// Integral JSON numbers become ints (block keys are routinely ints, and a
// float-typed 42 would encode to a different storage key than the int 42),
// other numbers become floats, JSON strings become strings. Booleans, null,
// arrays and objects are rejected.
func DecodeParams(raw []json.RawMessage) ([]relation.Value, error) {
	if len(raw) == 0 {
		return nil, nil
	}
	out := make([]relation.Value, len(raw))
	for i, r := range raw {
		s := strings.TrimSpace(string(r))
		if s == "" {
			return nil, fmt.Errorf("server: parameter %d is empty", i)
		}
		if s[0] == '"' {
			var v string
			if err := json.Unmarshal(r, &v); err != nil {
				return nil, fmt.Errorf("server: parameter %d: %w", i, err)
			}
			out[i] = relation.String(v)
			continue
		}
		var num json.Number
		if err := json.Unmarshal(r, &num); err != nil {
			return nil, fmt.Errorf("server: parameter %d must be a number or string, got %s", i, s)
		}
		if iv, err := num.Int64(); err == nil {
			out[i] = relation.Int(iv)
			continue
		}
		fv, err := num.Float64()
		if err != nil {
			return nil, fmt.Errorf("server: parameter %d: %w", i, err)
		}
		out[i] = relation.Float(fv)
	}
	return out, nil
}

// EncodeParams converts Go values into wire parameters; the client uses it
// to build requests. Supported kinds: integers, floats, strings, and
// relation.Value.
func EncodeParams(params []any) ([]json.RawMessage, error) {
	if len(params) == 0 {
		return nil, nil
	}
	out := make([]json.RawMessage, len(params))
	for i, p := range params {
		if v, ok := p.(relation.Value); ok {
			p = jsonValue(v)
		}
		switch p.(type) {
		case int, int8, int16, int32, int64, uint, uint8, uint16, uint32, uint64,
			float32, float64, string:
		default:
			return nil, fmt.Errorf("server: unsupported parameter %d type %T", i, p)
		}
		b, err := json.Marshal(p)
		if err != nil {
			return nil, fmt.Errorf("server: parameter %d: %w", i, err)
		}
		out[i] = b
	}
	return out, nil
}

// Response is the reply to one Request.
type Response struct {
	ID int64 `json:"id,omitempty"`
	OK bool  `json:"ok"`
	// Error describes the failure when OK is false; Code is its
	// machine-readable class ("queue_timeout", "overloaded", "canceled",
	// "statement"), so clients can tell retryable backpressure rejections
	// from statement faults without parsing the message.
	Error string `json:"error,omitempty"`
	Code  string `json:"code,omitempty"`
	// Cols and Rows carry a SELECT answer.
	Cols []string `json:"cols,omitempty"`
	Rows [][]any  `json:"rows,omitempty"`
	// Affected is the row count of an INSERT or DELETE.
	Affected int `json:"affected,omitempty"`
	// Stats carries per-query execution statistics for SELECTs.
	Stats *QueryStats `json:"stats,omitempty"`
	// Server carries server-wide statistics for the stats op.
	Server *ServerStats `json:"server,omitempty"`
}

// QueryStats is the wire form of zidian.Stats plus serving-layer fields.
type QueryStats struct {
	ScanFree   bool   `json:"scanFree"`
	Bounded    bool   `json:"bounded"`
	Gets       int64  `json:"gets"`
	DataValues int64  `json:"dataValues"`
	WallMicros int64  `json:"wallMicros"`
	CacheHit   bool   `json:"cacheHit"`
	Plan       string `json:"plan,omitempty"`
}

// ServerStats is the payload of the stats op and the /stats endpoint.
type ServerStats struct {
	UptimeSeconds  float64        `json:"uptimeSeconds"`
	Sessions       int64          `json:"sessions"`
	TotalSessions  int64          `json:"totalSessions"`
	Queries        int64          `json:"queries"`
	Errors         int64          `json:"errors"`
	PlanCache      CacheStats     `json:"planCache"`
	Admission      AdmissionStats `json:"admission"`
	StoreGets      int64          `json:"storeGets"`
	StoreScanNexts int64          `json:"storeScanNexts"`
	// QueryLatency summarizes the server-side statement latency histogram
	// (all verbs merged); nil when metrics are disabled or nothing ran yet.
	QueryLatency *LatencyQuantiles `json:"queryLatency,omitempty"`
}

// StatementsPayload is the body of GET /stats/statements: the per-template
// statement statistics registry, sorted and optionally truncated. Templates
// are anonymized (literals replaced by ?), so the payload never carries data
// values. Evicted, when present, folds the totals of templates evicted from
// the registry so sums over the payload stay conserved.
type StatementsPayload struct {
	SortedBy   string          `json:"sortedBy"`
	Tracked    int             `json:"tracked"`
	Capacity   int             `json:"capacity"`
	Evictions  int64           `json:"evictions"`
	Statements []obs.StmtEntry `json:"statements"`
	Evicted    *obs.StmtEntry  `json:"evicted,omitempty"`
}

// LatencyQuantiles are interpolated quantiles of a latency histogram, in
// microseconds to match the rest of the wire stats.
type LatencyQuantiles struct {
	Count     int64   `json:"count"`
	P50Micros float64 `json:"p50Micros"`
	P95Micros float64 `json:"p95Micros"`
	P99Micros float64 `json:"p99Micros"`
}

// jsonValue converts a relation value to its natural JSON representation.
func jsonValue(v relation.Value) any {
	switch v.Kind {
	case relation.KindInt:
		return v.Int
	case relation.KindFloat:
		return v.Flt
	case relation.KindString:
		return v.Str
	default:
		return nil
	}
}

// jsonRows converts result tuples to JSON-ready rows.
func jsonRows(rows []relation.Tuple) [][]any {
	out := make([][]any, len(rows))
	for i, r := range rows {
		row := make([]any, len(r))
		for j, v := range r {
			row[j] = jsonValue(v)
		}
		out[i] = row
	}
	return out
}

// NormalizeSQL canonicalizes a statement for plan-cache keying: whitespace
// runs outside quoted regions collapse to one space, reserved keywords fold
// to lower case, and trailing semicolons are dropped. Two spellings of the
// same statement therefore share one cache entry, while everything the
// compiled plan depends on stays significant:
//
//   - string literals — including text after an embedded ” escape, which
//     the lexer keeps inside the literal (internal/sql/lexer.go) — are
//     copied verbatim, so statements differing only inside a literal never
//     collide on one cache key;
//   - "-quoted regions are tracked like '-quoted ones and copied verbatim;
//   - identifier case is preserved (the parser keeps it, and relation and
//     attribute lookups are case-sensitive), so SELECT * FROM Emp and
//     select * from emp — different relations — key separately. Only words
//     in the lexer's reserved set, which can never be identifiers, fold.
func NormalizeSQL(src string) string {
	var b strings.Builder
	b.Grow(len(src))
	space := false
	flushSpace := func() {
		if space && b.Len() > 0 {
			b.WriteByte(' ')
		}
		space = false
	}
	isWord := func(c byte) bool {
		return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || ('0' <= c && c <= '9')
	}
	for i := 0; i < len(src); {
		c := src[i]
		switch {
		case c == '\'' || c == '"':
			// Quoted region: copy verbatim up to the closing quote. A ''
			// inside a '-quoted literal is the lexer's escape for one quote
			// character, not the end of the literal, so it keeps the region
			// open (the pre-fix normalizer exited here and mangled the rest
			// of the literal).
			quote := c
			flushSpace()
			b.WriteByte(c)
			i++
			for i < len(src) {
				b.WriteByte(src[i])
				if src[i] == quote {
					if quote == '\'' && i+1 < len(src) && src[i+1] == quote {
						b.WriteByte(src[i+1])
						i += 2
						continue
					}
					i++
					break
				}
				i++
			}
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			space = true
			i++
		case isWord(c):
			start := i
			for i < len(src) && isWord(src[i]) {
				i++
			}
			word := src[start:i]
			flushSpace()
			if sql.IsReserved(word) {
				b.WriteString(strings.ToLower(word))
			} else {
				b.WriteString(word)
			}
		default:
			flushSpace()
			b.WriteByte(c)
			i++
		}
	}
	s := b.String()
	for strings.HasSuffix(s, ";") {
		s = strings.TrimSuffix(s, ";")
		s = strings.TrimRight(s, " ")
	}
	return s
}

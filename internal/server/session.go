package server

import (
	"fmt"
	"sync"
	"time"

	"zidian"
)

// Session is the per-connection state of one client: an identity, the named
// prepared statements the client has compiled, and bookkeeping timestamps.
// A TCP connection owns exactly one session for its lifetime; each HTTP
// request is sessionless. Session methods are safe for concurrent use,
// though the TCP loop serves one request at a time per connection.
type Session struct {
	ID     uint64
	Remote string

	mu      sync.Mutex
	stmts   map[string]*zidian.Prepared
	started time.Time
}

// newSession builds an empty session.
func newSession(id uint64, remote string) *Session {
	return &Session{
		ID:      id,
		Remote:  remote,
		stmts:   make(map[string]*zidian.Prepared),
		started: time.Now(),
	}
}

// maxPreparedPerSession bounds per-session statement state so a misbehaving
// client cannot grow server memory without bound.
const maxPreparedPerSession = 256

// SetPrepared names a compiled statement within the session, replacing any
// previous statement of that name.
func (s *Session) SetPrepared(name string, p *zidian.Prepared) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.stmts[name]; !ok && len(s.stmts) >= maxPreparedPerSession {
		return fmt.Errorf("server: session holds %d prepared statements already", maxPreparedPerSession)
	}
	s.stmts[name] = p
	return nil
}

// Prepared looks up a named statement.
func (s *Session) Prepared(name string) (*zidian.Prepared, bool) {
	s.mu.Lock()
	p, ok := s.stmts[name]
	s.mu.Unlock()
	return p, ok
}

// ClosePrepared drops a named statement, reporting whether it existed.
func (s *Session) ClosePrepared(name string) bool {
	s.mu.Lock()
	_, ok := s.stmts[name]
	delete(s.stmts, name)
	s.mu.Unlock()
	return ok
}

// PreparedCount returns the number of named statements held.
func (s *Session) PreparedCount() int {
	s.mu.Lock()
	n := len(s.stmts)
	s.mu.Unlock()
	return n
}

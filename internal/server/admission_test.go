package server

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestAdmissionFastPath(t *testing.T) {
	a := NewAdmission(2, 2, time.Second)
	ctx := context.Background()
	if err := a.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if err := a.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	st := a.Stats()
	if st.InFlight != 2 || st.Admitted != 2 {
		t.Fatalf("stats = %+v", st)
	}
	a.Release()
	a.Release()
	if st := a.Stats(); st.InFlight != 0 {
		t.Fatalf("inFlight = %d after releases", st.InFlight)
	}
}

func TestAdmissionQueueTimeoutAndRejection(t *testing.T) {
	a := NewAdmission(1, 1, 50*time.Millisecond)
	ctx := context.Background()
	if err := a.Acquire(ctx); err != nil {
		t.Fatal(err)
	}

	// Second acquire waits in the queue and times out.
	timedOut := make(chan error, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		timedOut <- a.Acquire(ctx)
	}()
	// Wait until the queue is occupied so the third acquire sees it full.
	deadline := time.Now().Add(time.Second)
	for a.Stats().Waiting == 0 {
		if time.Now().After(deadline) {
			t.Fatal("queued acquire never registered")
		}
		time.Sleep(time.Millisecond)
	}
	if err := a.Acquire(ctx); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("expected ErrOverloaded with full queue, got %v", err)
	}
	if err := <-timedOut; !errors.Is(err, ErrQueueTimeout) {
		t.Fatalf("expected ErrQueueTimeout, got %v", err)
	}
	wg.Wait()

	st := a.Stats()
	if st.Rejected != 1 || st.TimedOut != 1 {
		t.Fatalf("stats = %+v, want 1 rejected / 1 timed out", st)
	}

	// Releasing the slot lets a fresh acquire through immediately.
	a.Release()
	if err := a.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	a.Release()
}

func TestAdmissionContextCancel(t *testing.T) {
	a := NewAdmission(1, 4, time.Minute)
	if err := a.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- a.Acquire(ctx) }()
	for a.Stats().Waiting == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("expected context.Canceled, got %v", err)
	}
	a.Release()
}

package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"zidian"
	"zidian/internal/obs"
)

// Config tunes a Server. The zero value picks serving defaults suitable for
// tests and small deployments.
type Config struct {
	// MaxConcurrent bounds the number of statements executing at once
	// (default 2×CPU-ish: 8).
	MaxConcurrent int
	// QueueDepth bounds how many admitted connections may wait for an
	// execution slot (default 4×MaxConcurrent).
	QueueDepth int
	// QueueTimeout bounds how long a statement may wait for a slot
	// (default 1s).
	QueueTimeout time.Duration
	// PlanCacheSize bounds the shared plan cache (default 4096 plans).
	PlanCacheSize int
	// MaxLineBytes bounds one wire-protocol line (default 1 MiB).
	MaxLineBytes int
	// LockRegime selects the statement scheduling discipline: "mvcc" (the
	// default — readers pin snapshots and never block on writers, writers
	// group-commit per relation), "per-relation" (the PR 5 read/write
	// locks, kept as the measured baseline), or "global" (the legacy
	// instance-wide write gate). See locks.go for the exact disciplines;
	// zidian-bench -exp mixed compares all three.
	LockRegime string
	// GlobalWriteLock is the legacy switch for LockRegime "global"; it
	// applies only when LockRegime is unset.
	GlobalWriteLock bool
	// DisableMetrics turns the observability layer off entirely: no
	// registry, no per-statement traces, no slow-query log, and /metrics
	// answers 404. Metrics are on by default; this exists for overhead
	// measurement (zidian-bench -exp server with -obs=off).
	DisableMetrics bool
	// SlowQueryThreshold, when positive, emits one structured JSON line to
	// SlowQueryLog for every statement whose server-side wall time meets or
	// exceeds it (including statements that failed slowly, e.g. queue
	// timeouts). Zero disables the log.
	SlowQueryThreshold time.Duration
	// SlowQueryLog receives slow-query lines (default os.Stderr when a
	// threshold is set).
	SlowQueryLog io.Writer
	// SlowQueryMaxBytes, when positive, bounds the slow-query log: when the
	// cap would be exceeded the sink is rotated if it supports
	// Rotate() error (see RotatingFile), otherwise the line is dropped and
	// counted on zidian_slow_query_dropped_total. Zero means unbounded.
	SlowQueryMaxBytes int64
	// StmtStatsCapacity bounds the per-template statement statistics
	// registry behind /stats/statements and SHOW STATEMENTS (default 512
	// templates; cold templates evict into the _evicted bucket).
	StmtStatsCapacity int
	// StmtMetricsTopK bounds how many templates the per-template /metrics
	// families (zidian_stmt_*) export (default 10).
	StmtMetricsTopK int
	// CaptureLog, when non-nil, receives one JSON line per finished
	// statement (anonymized template, bind kinds, arrival delta, session,
	// outcome — never literal values) for replay via zidian-loadgen -replay.
	CaptureLog io.Writer
	// EnablePprof mounts net/http/pprof handlers under /debug/pprof/ on the
	// HTTP surface.
	EnablePprof bool
	// ReclaimInterval sets the cadence of the background MVCC reclamation
	// sweeper, which drops retired block versions and retries pending
	// posting shrinks on relations that stopped receiving commits. Zero
	// uses the 5s default; negative disables the sweeper (retired state
	// then waits for each relation's next commit, as before).
	ReclaimInterval time.Duration
}

func (c Config) normalized() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 8
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.MaxConcurrent
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = time.Second
	}
	if c.PlanCacheSize <= 0 {
		c.PlanCacheSize = 4096
	}
	if c.MaxLineBytes <= 0 {
		c.MaxLineBytes = 1 << 20
	}
	if c.SlowQueryThreshold > 0 && c.SlowQueryLog == nil {
		c.SlowQueryLog = os.Stderr
	}
	if c.StmtStatsCapacity <= 0 {
		c.StmtStatsCapacity = 512
	}
	if c.StmtMetricsTopK <= 0 {
		c.StmtMetricsTopK = 10
	}
	if c.LockRegime == "" && c.GlobalWriteLock {
		c.LockRegime = "global"
	}
	return c
}

// sessKey carries the originating wire-session id through a statement's
// context so the capture stream can preserve per-session ordering.
type sessKey struct{}

func withSessionID(ctx context.Context, id uint64) context.Context {
	return context.WithValue(ctx, sessKey{}, id)
}

func sessionID(ctx context.Context) uint64 {
	id, _ := ctx.Value(sessKey{}).(uint64)
	return id
}

// Server is a long-lived, concurrent SQL service over one opened
// zidian.Instance. It terminates the wire protocol on TCP, serves the HTTP
// surface, shares one plan cache and one admission gate across both, and
// schedules statements with per-relation read/write locking (see relLocks):
// queries run concurrently with each other and with writes to relations
// they do not read; an INSERT/DELETE excludes only its target relation; DDL
// alone takes the instance-wide gate. Compiled plans survive writes — they
// depend only on the schemas — and each plan carries the relation set its
// execution reads, which is exactly the lock set taken.
type Server struct {
	inst  *zidian.Instance
	cfg   Config
	cache *PlanCache
	adm   *Admission

	// locks is the statement scheduler described above. The kv cluster
	// below is already safe for concurrent use, and the store/index
	// bookkeeping is internally synchronized; these locks provide the
	// statement-level consistency — a reader admitted after a write sees
	// the relation's blocks and index postings move together — and the DDL
	// gate the plan cache's epoch capture relies on.
	locks *relLocks

	// obs is the metrics registry + slow-query log; nil when
	// Config.DisableMetrics is set (every use is nil-safe).
	obs *serverObs

	// stopSweep halts the background MVCC reclamation sweeper; nil when
	// Config.ReclaimInterval is negative.
	stopSweep func()

	ctx    context.Context
	cancel context.CancelFunc

	mu      sync.Mutex
	tcpLn   net.Listener
	httpSrv *http.Server
	conns   map[net.Conn]struct{}
	closed  bool

	wg        sync.WaitGroup
	started   time.Time
	nextSess  atomic.Uint64
	sessions  atomic.Int64
	totalSess atomic.Int64
	queries   atomic.Int64
	errors    atomic.Int64
}

// New wraps an opened instance in a server. Call ServeTCP/ServeHTTP (or
// Start) to begin accepting, and Shutdown to drain.
func New(inst *zidian.Instance, cfg Config) *Server {
	cfg = cfg.normalized()
	regime, err := parseRegime(cfg.LockRegime)
	if err != nil {
		panic(err) // a startup configuration error: fail fast, loudly
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		inst:    inst,
		cfg:     cfg,
		cache:   NewPlanCache(cfg.PlanCacheSize),
		adm:     NewAdmission(cfg.MaxConcurrent, cfg.QueueDepth, cfg.QueueTimeout),
		locks:   newRelLocks(regime, inst.Relations()),
		ctx:     ctx,
		cancel:  cancel,
		conns:   make(map[net.Conn]struct{}),
		started: time.Now(),
	}
	if !cfg.DisableMetrics {
		s.obs = newServerObs(s, cfg)
	}
	if inst != nil && cfg.ReclaimInterval >= 0 {
		s.stopSweep = inst.StartReclaimSweeper(cfg.ReclaimInterval)
	}
	return s
}

// MetricsRegistry exposes the server's metrics registry for tests and
// embedders; nil when Config.DisableMetrics is set.
func (s *Server) MetricsRegistry() *obs.Registry {
	if s.obs == nil {
		return nil
	}
	return s.obs.reg
}

// Cache exposes the shared plan cache (for stats and tests).
func (s *Server) Cache() *PlanCache { return s.cache }

// Admission exposes the admission gate (for stats and tests).
func (s *Server) Admission() *Admission { return s.adm }

// Start listens on the given TCP and HTTP addresses (":0" picks a free
// port; an empty address disables that surface) and serves in background
// goroutines until Shutdown. It returns the bound addresses.
func (s *Server) Start(tcpAddr, httpAddr string) (tcp, httpA string, err error) {
	if tcpAddr != "" {
		ln, err := net.Listen("tcp", tcpAddr)
		if err != nil {
			return "", "", err
		}
		tcp = ln.Addr().String()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.ServeTCP(ln)
		}()
	}
	if httpAddr != "" {
		ln, err := net.Listen("tcp", httpAddr)
		if err != nil {
			return "", "", err
		}
		httpA = ln.Addr().String()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.ServeHTTP(ln)
		}()
	}
	return tcp, httpA, nil
}

// ServeTCP accepts wire-protocol connections on ln until Shutdown or a
// permanent accept error.
func (s *Server) ServeTCP(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return net.ErrClosed
	}
	s.tcpLn = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-s.ctx.Done():
				return nil
			default:
				return err
			}
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// serveConn runs one session: read a request line, serve it, write the
// response line, in order, until the client disconnects.
func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.sessions.Add(-1)
	}()
	s.sessions.Add(1)
	s.totalSess.Add(1)
	sess := newSession(s.nextSess.Add(1), conn.RemoteAddr().String())

	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64<<10), s.cfg.MaxLineBytes)
	out := bufio.NewWriter(conn)
	enc := json.NewEncoder(out)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var req Request
		resp := Response{}
		if err := json.Unmarshal(line, &req); err != nil {
			resp.Error = "malformed request: " + err.Error()
		} else {
			resp = s.handle(sess, &req)
		}
		if err := enc.Encode(&resp); err != nil {
			return
		}
		if err := out.Flush(); err != nil {
			return
		}
	}
	// Tell the client why the session is ending when the protocol itself
	// failed — most importantly an oversized request line, which would
	// otherwise look like a silent disconnect.
	if err := sc.Err(); err != nil {
		msg := "request line error: " + err.Error()
		if errors.Is(err, bufio.ErrTooLong) {
			msg = fmt.Sprintf("server: request line exceeds %d bytes", s.cfg.MaxLineBytes)
		}
		if enc.Encode(&Response{Error: msg}) == nil {
			out.Flush()
		}
	}
}

// handle dispatches one request against a session.
func (s *Server) handle(sess *Session, req *Request) Response {
	resp := Response{ID: req.ID}
	ctx := withSessionID(s.ctx, sess.ID)
	fail := func(err error) Response {
		s.errors.Add(1)
		resp.OK = false
		resp.Error = err.Error()
		resp.Code = errorCode(err)
		return resp
	}
	switch req.Op {
	case "ping":
		resp.OK = true
	case "stats":
		st := s.Stats()
		resp.OK = true
		resp.Server = &st
	case "query":
		params, err := DecodeParams(req.Params)
		if err != nil {
			return fail(err)
		}
		res, stats, cacheHit, err := s.Query(ctx, req.SQL, params...)
		if err != nil {
			return fail(err)
		}
		s.fillResult(&resp, res, stats, cacheHit)
	case "exec":
		params, err := DecodeParams(req.Params)
		if err != nil {
			return fail(err)
		}
		norm := NormalizeSQL(req.SQL)
		if strings.HasPrefix(norm, "select") {
			res, stats, cacheHit, err := s.queryNorm(ctx, norm, req.SQL, params)
			if err != nil {
				return fail(err)
			}
			s.fillResult(&resp, res, stats, cacheHit)
			return resp
		}
		r, err := s.Exec(ctx, req.SQL, params...)
		if err != nil {
			return fail(err)
		}
		resp.OK = true
		resp.Affected = r.Affected
		if r.Result != nil {
			resp.Cols = r.Result.Cols
			resp.Rows = jsonRows(r.Result.Rows)
		}
	case "prepare":
		if req.Name == "" {
			return fail(fmt.Errorf("server: prepare needs a statement name"))
		}
		p, _, err := s.compile(req.SQL)
		if err != nil {
			return fail(err)
		}
		if err := sess.SetPrepared(req.Name, p); err != nil {
			return fail(err)
		}
		resp.OK = true
	case "execute":
		params, err := DecodeParams(req.Params)
		if err != nil {
			return fail(err)
		}
		p, ok := sess.Prepared(req.Name)
		if !ok {
			return fail(fmt.Errorf("server: no prepared statement %q", req.Name))
		}
		// DDL since compilation? Recompile against the current catalog: the
		// old plan may use a dropped index or miss a newly created one.
		// runFresh repeats the refresh if another DDL lands mid-execution.
		stored := p
		if p.Epoch() != s.inst.SchemaEpoch() {
			p2, _, err := s.compile(p.SQL())
			if err != nil {
				return fail(err)
			}
			p = p2
		}
		norm := NormalizeSQL(p.SQL())
		c := s.obs.begin(verbSelect)
		c.setStmt(norm, params)
		c.setSession(sess.ID)
		c.setRelations(p.Relations())
		res, stats, ran, err := s.runFresh(ctx, c, norm, p.SQL(), p, params)
		if err != nil {
			c.finish(0, true, err)
			return fail(err)
		}
		c.finish(len(res.Rows), true, nil)
		if ran != stored {
			if err := sess.SetPrepared(req.Name, ran); err != nil {
				return fail(err)
			}
		}
		s.fillResult(&resp, res, stats, true)
	case "close":
		if !sess.ClosePrepared(req.Name) {
			return fail(fmt.Errorf("server: no prepared statement %q", req.Name))
		}
		resp.OK = true
	default:
		return fail(fmt.Errorf("server: unknown op %q", req.Op))
	}
	return resp
}

func (s *Server) fillResult(resp *Response, res *zidian.Result, stats *zidian.Stats, cacheHit bool) {
	resp.OK = true
	resp.Cols = res.Cols
	resp.Rows = jsonRows(res.Rows)
	resp.Stats = &QueryStats{
		ScanFree:   stats.ScanFree,
		Bounded:    stats.Bounded,
		Gets:       stats.Gets,
		DataValues: stats.DataValues,
		WallMicros: stats.Wall.Microseconds(),
		CacheHit:   cacheHit,
	}
}

// compile returns the cached plan for the statement, compiling and caching
// it on a miss, and reports whether it was a cache hit.
func (s *Server) compile(sql string) (*zidian.Prepared, bool, error) {
	return s.compileNorm(NormalizeSQL(sql), sql)
}

// compileNorm is compile with the normalization already done. The cache
// epoch is captured under the compile lock — DDL holds the global gate
// exclusively while it invalidates — so a plan compiled just before a DDL
// lands in the cache tagged stale instead of surviving the flush.
func (s *Server) compileNorm(norm, sql string) (*zidian.Prepared, bool, error) {
	if p, ok := s.cache.Get(norm); ok {
		return p, true, nil
	}
	release := s.locks.compileLock()
	epoch := s.cache.Epoch()
	p, err := s.inst.Prepare(sql)
	release()
	if err != nil {
		return nil, false, err
	}
	s.cache.PutAt(norm, p, epoch)
	return p, false, nil
}

// run executes a compiled plan under admission control and the read locks
// of the relations the plan touches, binding params into the plan template
// first. Writes to any other relation proceed concurrently. Queue and lock
// waits land in the statement context even when acquisition fails, so a
// timed-out statement still reports where its latency went.
func (s *Server) run(ctx context.Context, c *stmtCtx, p *zidian.Prepared, params []zidian.Value) (*zidian.Result, *zidian.Stats, error) {
	qStart := time.Now()
	err := s.adm.Acquire(ctx)
	c.admissionWait(time.Since(qStart))
	if err != nil {
		return nil, nil, err
	}
	defer s.adm.Release()
	lStart := time.Now()
	release := s.locks.acquireRead(p.Relations())
	c.locksWait(time.Since(lStart))
	defer release()
	s.queries.Add(1)
	return p.RunTraced(c.Trace(), params...)
}

// Query compiles (or reuses) and executes one SELECT, binding params into
// the statement's `?` placeholders, and reports whether the plan came from
// the cache. Parameterized statements share one cache entry across all
// bindings: the cache key is the template text, so a distinct-literal
// workload that parameterizes compiles once per template instead of once
// per literal.
func (s *Server) Query(ctx context.Context, sql string, params ...zidian.Value) (*zidian.Result, *zidian.Stats, bool, error) {
	return s.queryNorm(ctx, NormalizeSQL(sql), sql, params)
}

// queryNorm is Query with the normalization already done.
func (s *Server) queryNorm(ctx context.Context, norm, sql string, params []zidian.Value) (*zidian.Result, *zidian.Stats, bool, error) {
	c := s.obs.begin(verbSelect)
	c.setStmt(norm, params)
	c.setSession(sessionID(ctx))
	p, hit, err := s.compileNorm(norm, sql)
	if err != nil {
		c.finish(0, false, err)
		return nil, nil, false, err
	}
	c.setRelations(p.Relations())
	res, stats, _, err := s.runFresh(ctx, c, norm, sql, p, params)
	if err != nil {
		c.finish(0, hit, err)
		return nil, nil, hit, err
	}
	c.finish(len(res.Rows), hit, nil)
	return res, stats, hit, nil
}

// runFresh executes a compiled plan, recompiling and retrying when DDL made
// the plan stale between compilation and execution (compile and run hold
// the read lock in separate critical sections, so a DROP INDEX can land in
// between and strand a plan on a vanished index). It returns the plan that
// finally ran so callers can refresh session state.
func (s *Server) runFresh(ctx context.Context, c *stmtCtx, norm, sql string, p *zidian.Prepared, params []zidian.Value) (*zidian.Result, *zidian.Stats, *zidian.Prepared, error) {
	for attempt := 0; ; attempt++ {
		res, stats, err := s.run(ctx, c, p, params)
		if err == nil || attempt >= 2 || p.Epoch() == s.inst.SchemaEpoch() {
			return res, stats, p, err
		}
		p2, _, cerr := s.compileNorm(norm, sql)
		if cerr != nil {
			return nil, nil, p, cerr
		}
		p = p2
	}
}

// Exec runs one SQL statement under the locks its kind requires:
// INSERT/DELETE take their target relation's write lock (statements on
// other relations keep flowing), DDL takes the instance-wide gate and
// invalidates the plan cache while still holding it — so no statement can
// observe the new catalog with an old plan — EXPLAIN takes only the compile
// lock (it plans, it touches no data), EXPLAIN ANALYZE schedules like the
// SELECT it wraps (it executes), and a SELECT routed here delegates to the
// cached read path. Params bind into `?` placeholders.
func (s *Server) Exec(ctx context.Context, sql string, params ...zidian.Value) (*zidian.ExecResult, error) {
	kind, target, err := zidian.StatementInfo(sql)
	if err != nil {
		return nil, err
	}
	if kind == zidian.StmtShow {
		return s.execShow(ctx)
	}
	if kind == zidian.StmtSelect {
		norm := NormalizeSQL(sql)
		c := s.obs.begin(verbSelect)
		c.setStmt(norm, params)
		c.setSession(sessionID(ctx))
		p, hit, err := s.compileNorm(norm, sql)
		if err != nil {
			c.finish(0, false, err)
			return nil, err
		}
		c.setRelations(p.Relations())
		res, stats, ran, err := s.runFresh(ctx, c, norm, sql, p, params)
		if err != nil {
			c.finish(0, hit, err)
			return nil, err
		}
		c.finish(len(res.Rows), hit, nil)
		return &zidian.ExecResult{Result: res, Stats: stats, Relations: ran.Relations()}, nil
	}
	if kind == zidian.StmtExplainAnalyze {
		return s.execExplainAnalyze(ctx, sql, params)
	}
	verb := verbExplain
	switch kind {
	case zidian.StmtInsert:
		verb = verbInsert
	case zidian.StmtDelete:
		verb = verbDelete
	case zidian.StmtDDL:
		verb = verbDDL
	}
	c := s.obs.begin(verb)
	c.setStmt(NormalizeSQL(sql), params)
	c.setSession(sessionID(ctx))
	qStart := time.Now()
	if err := s.adm.Acquire(ctx); err != nil {
		c.admissionWait(time.Since(qStart))
		c.finish(0, false, err)
		return nil, err
	}
	c.admissionWait(time.Since(qStart))
	defer s.adm.Release()
	var release func()
	lStart := time.Now()
	switch kind {
	case zidian.StmtInsert, zidian.StmtDelete:
		release = s.locks.acquireWrite(target)
	case zidian.StmtDDL:
		release = s.locks.acquireDDL()
	default: // EXPLAIN: planning only, no data access
		release = s.locks.compileLock()
	}
	c.locksWait(time.Since(lStart))
	defer release()
	s.queries.Add(1)
	r, err := s.inst.ExecTraced(c.Trace(), sql, params...)
	if err != nil {
		c.finish(0, false, err)
		return nil, err
	}
	if r.SchemaChanged {
		s.cache.Invalidate()
	}
	c.setRelations(r.Relations)
	c.finish(r.Affected, false, nil)
	return r, nil
}

// execExplainAnalyze serves EXPLAIN ANALYZE <select>: the inner SELECT
// compiles through the plan cache under its own template key (so the
// analyzed statement shares the cached plan of the query it wraps), the
// statement schedules exactly like a read — admission, then the plan's
// relation read locks — and executes under the statement trace; the client
// receives the annotated operator tree instead of the rows.
func (s *Server) execExplainAnalyze(ctx context.Context, sql string, params []zidian.Value) (*zidian.ExecResult, error) {
	inner, _ := zidian.TrimExplainAnalyze(sql)
	norm := NormalizeSQL(inner)
	c := s.obs.begin(verbExplainAnalyze)
	c.setStmt(norm, params)
	c.setSession(sessionID(ctx))
	p, hit, err := s.compileNorm(norm, inner)
	if err != nil {
		c.finish(0, false, err)
		return nil, err
	}
	c.setRelations(p.Relations())
	qStart := time.Now()
	if err := s.adm.Acquire(ctx); err != nil {
		c.admissionWait(time.Since(qStart))
		c.finish(0, hit, err)
		return nil, err
	}
	c.admissionWait(time.Since(qStart))
	defer s.adm.Release()
	lStart := time.Now()
	release := s.locks.acquireRead(p.Relations())
	c.locksWait(time.Since(lStart))
	defer release()
	s.queries.Add(1)
	res, stats, _, err := p.Analyze(c.Trace(), params...)
	if err != nil {
		c.finish(0, hit, err)
		return nil, err
	}
	c.finish(len(res.Rows), hit, nil)
	return &zidian.ExecResult{Result: res, Stats: stats, Relations: p.Relations()}, nil
}

// execShow serves SHOW STATEMENTS: a relational rendering of the statement
// statistics registry, ordered by total time. It reads only registry
// snapshots — no data access, no admission — but still counts as a statement
// under the "show" verb so the registry observes its own readers.
func (s *Server) execShow(ctx context.Context) (*zidian.ExecResult, error) {
	if s.obs == nil {
		return nil, fmt.Errorf("server: SHOW STATEMENTS requires metrics (disabled by configuration)")
	}
	c := s.obs.begin(verbShow)
	c.setStmt("show statements", nil)
	c.setSession(sessionID(ctx))
	snap := s.obs.stmts.Snapshot()
	entries := snap.Statements
	obs.SortStmtEntries(entries, obs.SortByTotalTime)
	if snap.Evicted != nil {
		entries = append(entries, *snap.Evicted)
	}
	res := &zidian.Result{Cols: []string{
		"template", "verb", "calls", "errors", "rows", "total_ms", "mean_us",
		"p50_us", "p95_us", "p99_us", "kv_ops", "rtt_ms", "postings", "blocks", "hit_pct",
	}}
	for _, e := range entries {
		hitPct := 0.0
		if e.Calls > 0 {
			hitPct = 100 * float64(e.CacheHits) / float64(e.Calls)
		}
		res.Rows = append(res.Rows, zidian.Tuple{
			zidian.String(e.Template),
			zidian.String(e.Verb),
			zidian.Int(e.Calls),
			zidian.Int(e.Errors),
			zidian.Int(e.Rows),
			zidian.Float(float64(e.TotalNanos) / 1e6),
			zidian.Float(e.MeanMicros),
			zidian.Float(e.P50Micros),
			zidian.Float(e.P95Micros),
			zidian.Float(e.P99Micros),
			zidian.Int(e.KVOps),
			zidian.Float(float64(e.KV.WaitNanos) / 1e6),
			zidian.Int(e.PostingReads),
			zidian.Int(e.Blocks),
			zidian.Float(hitPct),
		})
	}
	c.finish(len(res.Rows), false, nil)
	return &zidian.ExecResult{Result: res}, nil
}

// Stats snapshots server-wide statistics. With metrics enabled it includes
// the server-side statement latency quantiles derived from the
// zidian_query_duration_seconds histogram (all verbs merged).
func (s *Server) Stats() ServerStats {
	kvm := s.inst.Store().Cluster.Metrics()
	st := ServerStats{
		UptimeSeconds:  time.Since(s.started).Seconds(),
		Sessions:       s.sessions.Load(),
		TotalSessions:  s.totalSess.Load(),
		Queries:        s.queries.Load(),
		Errors:         s.errors.Load(),
		PlanCache:      s.cache.Stats(),
		Admission:      s.adm.Stats(),
		StoreGets:      kvm.Gets,
		StoreScanNexts: kvm.ScanNexts,
	}
	if s.obs != nil {
		snap := s.obs.latency.MergedSnapshot()
		if snap.QuantilesValid() {
			st.QueryLatency = &LatencyQuantiles{
				Count:     snap.Count,
				P50Micros: snap.Quantile(0.50) * 1e6,
				P95Micros: snap.Quantile(0.95) * 1e6,
				P99Micros: snap.Quantile(0.99) * 1e6,
			}
		}
	}
	return st
}

// ServeHTTP serves the HTTP surface on ln until Shutdown:
//
//	POST /query   {"sql": "select ...", "params": [...]}  (or GET /query?q=...)
//	GET  /healthz liveness
//	GET  /stats   server statistics (JSON superset of the metrics families)
//	GET  /stats/statements per-template statement statistics
//	              (?top=K bounds the list, ?by=total_time|calls|kv_ops sorts;
//	              404 when metrics are disabled)
//	GET  /metrics Prometheus text exposition (404 when metrics are disabled)
//	GET  /debug/pprof/* profiling, when Config.EnablePprof is set
func (s *Server) ServeHTTP(ln net.Listener) error {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.httpQuery)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		st := s.Stats()
		json.NewEncoder(w).Encode(&st)
	})
	mux.HandleFunc("/stats/statements", s.httpStatements)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		if s.obs == nil {
			http.Error(w, "metrics disabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.obs.reg.WritePrometheus(w)
	})
	if s.cfg.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	srv := &http.Server{Handler: mux}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return net.ErrClosed
	}
	s.httpSrv = srv
	s.mu.Unlock()
	err := srv.Serve(ln)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// httpStatements serves GET /stats/statements: the statement statistics
// registry as JSON, sorted by ?by= (total_time default, calls, kv_ops) and
// bounded by ?top=K.
func (s *Server) httpStatements(w http.ResponseWriter, r *http.Request) {
	if s.obs == nil {
		http.Error(w, "metrics disabled", http.StatusNotFound)
		return
	}
	by := r.URL.Query().Get("by")
	switch by {
	case "", obs.SortByTotalTime, obs.SortByCalls, obs.SortByKVOps:
	default:
		http.Error(w, fmt.Sprintf("unknown sort %q: use %s, %s or %s",
			by, obs.SortByTotalTime, obs.SortByCalls, obs.SortByKVOps), http.StatusBadRequest)
		return
	}
	if by == "" {
		by = obs.SortByTotalTime
	}
	top := 0
	if t := r.URL.Query().Get("top"); t != "" {
		n, err := strconv.Atoi(t)
		if err != nil || n <= 0 {
			http.Error(w, "top must be a positive integer", http.StatusBadRequest)
			return
		}
		top = n
	}
	snap := s.obs.stmts.Snapshot()
	obs.SortStmtEntries(snap.Statements, by)
	if top > 0 && len(snap.Statements) > top {
		snap.Statements = snap.Statements[:top]
	}
	payload := StatementsPayload{
		SortedBy:   by,
		Tracked:    snap.Tracked,
		Capacity:   snap.Capacity,
		Evictions:  snap.Evictions,
		Statements: snap.Statements,
		Evicted:    snap.Evicted,
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(&payload)
}

func (s *Server) httpQuery(w http.ResponseWriter, r *http.Request) {
	var sql string
	var rawParams []json.RawMessage
	switch r.Method {
	case http.MethodGet:
		sql = r.URL.Query().Get("q")
	case http.MethodPost:
		var body struct {
			SQL    string            `json:"sql"`
			Params []json.RawMessage `json:"params"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			http.Error(w, "malformed body: "+err.Error(), http.StatusBadRequest)
			return
		}
		sql = body.SQL
		rawParams = body.Params
	default:
		http.Error(w, "use GET ?q= or POST {\"sql\": ...}", http.StatusMethodNotAllowed)
		return
	}
	if strings.TrimSpace(sql) == "" {
		http.Error(w, "empty statement", http.StatusBadRequest)
		return
	}
	params, err := DecodeParams(rawParams)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var resp Response
	norm := NormalizeSQL(sql)
	if strings.HasPrefix(norm, "select") {
		var res *zidian.Result
		var stats *zidian.Stats
		var cacheHit bool
		res, stats, cacheHit, err = s.queryNorm(s.ctx, norm, sql, params)
		if err == nil {
			s.fillResult(&resp, res, stats, cacheHit)
		}
	} else {
		var r *zidian.ExecResult
		r, err = s.Exec(s.ctx, sql, params...)
		if err == nil {
			resp.OK = true
			resp.Affected = r.Affected
			if r.Result != nil {
				resp.Cols = r.Result.Cols
				resp.Rows = jsonRows(r.Result.Rows)
			}
		}
	}
	w.Header().Set("Content-Type", "application/json")
	if err != nil {
		s.errors.Add(1)
		resp.Error = err.Error()
		resp.Code = errorCode(err)
		// Backpressure and shutdown are transient server-side conditions the
		// client should retry elsewhere/later; everything else is the
		// statement's own fault.
		if errors.Is(err, ErrOverloaded) || errors.Is(err, ErrQueueTimeout) ||
			errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			w.WriteHeader(http.StatusServiceUnavailable)
		} else {
			w.WriteHeader(http.StatusBadRequest)
		}
	}
	json.NewEncoder(w).Encode(&resp)
}

// Shutdown stops accepting, unblocks idle connections, and waits for
// in-flight statements to drain until ctx expires, then force-closes
// stragglers. It is idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	tcpLn, httpSrv := s.tcpLn, s.httpSrv
	// Wake blocked readers: sessions finish the statement they are serving,
	// write its response, then fail the next read and exit cleanly.
	for conn := range s.conns {
		conn.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()

	s.cancel() // aborts statements waiting in the admission queue
	if s.stopSweep != nil {
		s.stopSweep() // idempotent; waits for an in-flight sweep pass
	}
	if tcpLn != nil {
		tcpLn.Close()
	}
	var httpErr error
	if httpSrv != nil {
		httpErr = httpSrv.Shutdown(ctx)
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return httpErr
	case <-ctx.Done():
		s.mu.Lock()
		for conn := range s.conns {
			conn.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

package server

import (
	"fmt"
	"sync"
	"testing"

	"zidian"
)

func TestNormalizeSQL(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{"SELECT  a FROM t", "select a from t"},
		{"select a\n\tfrom   t ;", "select a from t"},
		{"select a from t;;", "select a from t"},
		{"SELECT a FROM t WHERE b = 'MiXeD Case'", "select a from t where b = 'MiXeD Case'"},
		{"select a from t where b = 'two  spaces'", "select a from t where b = 'two  spaces'"},
		{"  select 1  ", "select 1"},
	}
	for _, c := range cases {
		if got := NormalizeSQL(c.in); got != c.want {
			t.Errorf("NormalizeSQL(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	// Equivalent spellings share one key; different literals do not.
	if NormalizeSQL("SELECT a FROM t WHERE x=1") != NormalizeSQL("select  a\nfrom t where x=1") {
		t.Error("equivalent spellings should normalize identically")
	}
	if NormalizeSQL("select a from t where x=1") == NormalizeSQL("select a from t where x=2") {
		t.Error("different literals must stay distinct")
	}
}

// TestNormalizeSQLQuoteEscape: the lexer's ” escape keeps a literal open
// and a ' inside a "-quoted literal is ordinary content
// (internal/sql/lexer.go:126), so the normalizer must track both region
// kinds the way the lexer does. The pre-fix normalizer toggled string mode
// on every bare ' and ignored " entirely; an apostrophe inside a "-quoted
// literal therefore flipped it into string mode, the following real
// literal was classified as bare text and case-folded, and two statements
// that differ only inside that literal collided on one plan-cache key —
// serving the wrong cached plan.
func TestNormalizeSQLQuoteEscape(t *testing.T) {
	// Verbatim copy of everything inside an escaped literal.
	in := "SELECT a FROM t WHERE b = 'It''s  A  Test'"
	if got, want := NormalizeSQL(in), "select a from t where b = 'It''s  A  Test'"; got != want {
		t.Errorf("NormalizeSQL(%q) = %q, want %q", in, got, want)
	}
	// Distinct statements the pre-fix normalizer keyed identically: the '
	// inside "It's" desynchronized its string tracking, so 'D' was folded
	// to 'd' — a wrong-plan collision (both pairs verified colliding on the
	// pre-fix implementation).
	collide := [][2]string{
		{
			`select a from t where b = "It's" and c = 'D'`,
			`select a from t where b = "it's" and c = 'd'`,
		},
		{
			`select a from t where b = "x'y" and c = 'A  B'`,
			`select a from t where b = "x'y" and c = 'a  b'`,
		},
	}
	for _, pair := range collide {
		if NormalizeSQL(pair[0]) == NormalizeSQL(pair[1]) {
			t.Errorf("distinct statements share a cache key:\n  %q\n  %q\n  key %q",
				pair[0], pair[1], NormalizeSQL(pair[0]))
		}
	}
	// Escapes and quoted quotes must not split the key on spelling variants.
	if NormalizeSQL("SELECT a FROM t WHERE b = 'it''s'") != NormalizeSQL("select  a from t where b = 'it''s'") {
		t.Error("equivalent spellings around an escaped literal should share a key")
	}
	if NormalizeSQL(`SELECT a FROM t WHERE b = "it's"`) != NormalizeSQL(`select a  from t where b = "it's"`) {
		t.Error(`equivalent spellings around a "-quoted apostrophe should share a key`)
	}
}

// TestNormalizeSQLIdentifierCase: the parser preserves identifier case and
// relation/attribute lookups are case-sensitive, so SELECT * FROM Emp and
// select * from emp name different relations. The pre-fix normalizer
// lowercased identifiers (and "-quoted regions, which it did not track at
// all) and served one cached plan for both.
func TestNormalizeSQLIdentifierCase(t *testing.T) {
	if NormalizeSQL("SELECT * FROM Emp") == NormalizeSQL("select * from emp") {
		t.Error("identifiers differing in case must not share a cache key")
	}
	// Keywords still fold: spelling variants of one statement share a key.
	if got, want := NormalizeSQL("SELECT V.make FROM VEHICLE V WHERE V.id = 1"),
		"select V.make from VEHICLE V where V.id = 1"; got != want {
		t.Errorf("keyword folding: got %q, want %q", got, want)
	}
	if NormalizeSQL("SELECT V.make FROM VEHICLE V") != NormalizeSQL("select V.make from VEHICLE V") {
		t.Error("keyword-case variants of one statement should share a key")
	}
	// "-quoted regions are tracked and copied verbatim.
	if got, want := NormalizeSQL(`SELECT a FROM t WHERE b = "MiXeD  Case"`),
		`select a from t where b = "MiXeD  Case"`; got != want {
		t.Errorf("double-quoted region: got %q, want %q", got, want)
	}
	if NormalizeSQL(`select a from t where b = "AB"`) == NormalizeSQL(`select a from t where b = "ab"`) {
		t.Error(`"-quoted contents differing in case must not share a cache key`)
	}
}

func TestPlanCacheHitAndEviction(t *testing.T) {
	// Capacity below the shard count collapses to a single shard, making
	// LRU order across keys deterministic for the test.
	c := NewPlanCache(2)
	if len(c.shards) != 2 {
		t.Fatalf("expected 2 shards for capacity 2, got %d", len(c.shards))
	}

	p1, p2 := new(zidian.Prepared), new(zidian.Prepared)
	if _, ok := c.Get("q1"); ok {
		t.Fatal("empty cache should miss")
	}
	c.Put("q1", p1)
	got, ok := c.Get("q1")
	if !ok || got != p1 {
		t.Fatal("expected hit returning the stored plan")
	}
	c.Put("q1", p2)
	if got, _ := c.Get("q1"); got != p2 {
		t.Fatal("re-Put should replace the plan")
	}

	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 2 hits / 1 miss", st)
	}

	// Overfill one shard: each shard holds perCap=1 entry, so inserting
	// many keys evicts the older resident of each shard.
	for i := 0; i < 16; i++ {
		c.Put(fmt.Sprintf("k%d", i), p1)
	}
	if c.Len() > 2 {
		t.Fatalf("cache over capacity: len=%d", c.Len())
	}
	if c.Stats().Evictions == 0 {
		t.Fatal("expected evictions after overfill")
	}
}

func TestPlanCacheLRUOrder(t *testing.T) {
	c := NewPlanCache(1) // one shard, one slot
	p := new(zidian.Prepared)
	c.Put("a", p)
	c.Put("b", p) // evicts a
	if _, ok := c.Get("a"); ok {
		t.Fatal("a should have been evicted")
	}
	if _, ok := c.Get("b"); !ok {
		t.Fatal("b should be resident")
	}
}

func TestPlanCacheConcurrent(t *testing.T) {
	c := NewPlanCache(64)
	p := new(zidian.Prepared)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("q%d", (g*7+i)%100)
				if _, ok := c.Get(key); !ok {
					c.Put(key, p)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Fatalf("cache over capacity: %d", c.Len())
	}
	st := c.Stats()
	if st.Hits+st.Misses != 8*200 {
		t.Fatalf("lookups accounted = %d, want %d", st.Hits+st.Misses, 8*200)
	}
}

package server

import (
	"container/list"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"zidian"
)

// PlanCache is a bounded, lock-striped LRU cache from normalized SQL text to
// compiled zidian.Prepared statements. Compilation (parse → minimize → check
// → chase-based plan generation) dominates the latency of small scan-free
// queries, so a serving layer must reuse plans across requests; the cache
// makes that reuse safe and cheap under concurrency.
//
// The key is the normalized statement text. A parameterized statement keeps
// its `?` placeholders in the key, so one cached template serves every
// binding — the serving hot path. Non-parameterized SQL falls back to
// literal-inlined keys on purpose: the literals are baked into the compiled
// plan, so they must stay significant, and a distinct-literal workload that
// does not parameterize pays one compilation per distinct statement (the
// ParamsHits/LiteralHits split in CacheStats makes the difference visible).
//
// The key space is split across independently locked shards so concurrent
// lookups of different statements do not serialize on one mutex. Each shard
// evicts least-recently-used entries once it exceeds its share of the
// capacity.
//
// Plans depend on the relational and BaaV schemas — fixed for the lifetime
// of an opened instance — and on the secondary-index catalog, which DDL
// mutates at runtime. The cache therefore carries a schema epoch: every
// entry records the epoch it was compiled under, Invalidate advances the
// epoch, and entries from older epochs are treated as misses and dropped on
// access. Data maintenance (INSERT/DELETE) never invalidates plans; only
// DDL does.
type PlanCache struct {
	shards []cacheShard
	perCap int
	epoch  atomic.Uint64

	hits          atomic.Int64
	paramsHits    atomic.Int64
	literalHits   atomic.Int64
	misses        atomic.Int64
	evictions     atomic.Int64
	invalidations atomic.Int64
	stale         atomic.Int64
}

type cacheShard struct {
	mu  sync.Mutex
	lru *list.List // front = most recent; values are *cacheEntry
	m   map[string]*list.Element
}

type cacheEntry struct {
	key   string
	plan  *zidian.Prepared
	epoch uint64
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Size      int     `json:"size"`
	Capacity  int     `json:"capacity"`
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	Evictions int64   `json:"evictions"`
	HitRate   float64 `json:"hitRate"`
	// ParamsHits counts hits on parameterized templates (one entry serving
	// every literal of a statement shape) and LiteralHits counts hits on
	// literal-inlined entries (the fallback for non-parameterized SQL, whose
	// cache key keeps the literals). The split makes the template-reuse win
	// observable: a distinct-literal workload only hits through ParamsHits.
	ParamsHits  int64 `json:"paramsHits"`
	LiteralHits int64 `json:"literalHits"`
	// Epoch is the current schema epoch; Invalidations counts Invalidate
	// calls and StaleDrops the entries discarded for trailing the epoch.
	Epoch         uint64 `json:"epoch"`
	Invalidations int64  `json:"invalidations"`
	StaleDrops    int64  `json:"staleDrops"`
}

const defaultCacheShards = 16

// NewPlanCache builds a cache holding at most capacity plans (minimum one
// per shard). Shards are fixed at construction.
func NewPlanCache(capacity int) *PlanCache {
	nShards := defaultCacheShards
	if capacity < nShards {
		nShards = max(1, capacity)
	}
	per := max(1, capacity/nShards)
	c := &PlanCache{shards: make([]cacheShard, nShards), perCap: per}
	for i := range c.shards {
		c.shards[i].lru = list.New()
		c.shards[i].m = make(map[string]*list.Element)
	}
	return c
}

func (c *PlanCache) shard(key string) *cacheShard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return &c.shards[h.Sum32()%uint32(len(c.shards))]
}

// Epoch returns the cache's current schema epoch. Callers that compile
// plans outside the cache's locks should capture the epoch before
// compiling and hand it to PutAt, so a concurrent Invalidate marks the
// entry stale rather than letting an outdated plan land under the new
// epoch.
func (c *PlanCache) Epoch() uint64 { return c.epoch.Load() }

// Invalidate advances the schema epoch, logically flushing every cached
// plan in O(1): entries compiled under older epochs read as misses and are
// dropped when next touched. Serving layers call it after DDL.
func (c *PlanCache) Invalidate() {
	c.epoch.Add(1)
	c.invalidations.Add(1)
}

// Get returns the cached plan for the normalized key, marking it most
// recently used. Entries whose epoch trails the current schema epoch are
// stale: they are removed and reported as misses.
func (c *PlanCache) Get(key string) (*zidian.Prepared, bool) {
	cur := c.epoch.Load()
	s := c.shard(key)
	s.mu.Lock()
	el, ok := s.m[key]
	stale := false
	if ok {
		if el.Value.(*cacheEntry).epoch != cur {
			s.lru.Remove(el)
			delete(s.m, key)
			ok = false
			stale = true
		} else {
			s.lru.MoveToFront(el)
		}
	}
	s.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		if stale {
			c.stale.Add(1)
		}
		return nil, false
	}
	c.hits.Add(1)
	plan := el.Value.(*cacheEntry).plan
	if plan != nil && plan.NumParams() > 0 {
		c.paramsHits.Add(1)
	} else {
		c.literalHits.Add(1)
	}
	return plan, true
}

// Put stores a compiled plan under the normalized key at the current schema
// epoch. Prefer PutAt when compilation happened outside the cache's locks.
func (c *PlanCache) Put(key string, plan *zidian.Prepared) {
	c.PutAt(key, plan, c.epoch.Load())
}

// PutAt stores a compiled plan under the normalized key, tagged with the
// schema epoch the plan was compiled at, evicting the shard's
// least-recently-used entry if it is full. Racing Puts of the same key keep
// the latest plan; both compile to equivalent plans so either is correct.
// A plan tagged with an old epoch is stored but reads as stale, so a DDL
// racing a compilation can never resurrect an outdated plan.
func (c *PlanCache) PutAt(key string, plan *zidian.Prepared, epoch uint64) {
	s := c.shard(key)
	s.mu.Lock()
	if el, ok := s.m[key]; ok {
		e := el.Value.(*cacheEntry)
		e.plan = plan
		e.epoch = epoch
		s.lru.MoveToFront(el)
		s.mu.Unlock()
		return
	}
	s.m[key] = s.lru.PushFront(&cacheEntry{key: key, plan: plan, epoch: epoch})
	var evicted int64
	for s.lru.Len() > c.perCap {
		oldest := s.lru.Back()
		s.lru.Remove(oldest)
		delete(s.m, oldest.Value.(*cacheEntry).key)
		evicted++
	}
	s.mu.Unlock()
	if evicted > 0 {
		c.evictions.Add(evicted)
	}
}

// Len returns the number of cached plans.
func (c *PlanCache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.lru.Len()
		s.mu.Unlock()
	}
	return n
}

// Stats snapshots hit/miss/eviction counters.
func (c *PlanCache) Stats() CacheStats {
	st := CacheStats{
		Size:          c.Len(),
		Capacity:      c.perCap * len(c.shards),
		Hits:          c.hits.Load(),
		ParamsHits:    c.paramsHits.Load(),
		LiteralHits:   c.literalHits.Load(),
		Misses:        c.misses.Load(),
		Evictions:     c.evictions.Load(),
		Epoch:         c.epoch.Load(),
		Invalidations: c.invalidations.Load(),
		StaleDrops:    c.stale.Load(),
	}
	if total := st.Hits + st.Misses; total > 0 {
		st.HitRate = float64(st.Hits) / float64(total)
	}
	return st
}

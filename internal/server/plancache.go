package server

import (
	"container/list"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"zidian"
)

// PlanCache is a bounded, lock-striped LRU cache from normalized SQL text to
// compiled zidian.Prepared statements. Compilation (parse → minimize → check
// → chase-based plan generation) dominates the latency of small scan-free
// queries, so a serving layer must reuse plans across requests; the cache
// makes that reuse safe and cheap under concurrency.
//
// The key space is split across independently locked shards so concurrent
// lookups of different statements do not serialize on one mutex. Each shard
// evicts least-recently-used entries once it exceeds its share of the
// capacity. Cached plans never expire otherwise: a plan depends only on the
// relational and BaaV schemas, which are fixed for the lifetime of an opened
// instance, so data maintenance (INSERT/DELETE) does not invalidate it.
type PlanCache struct {
	shards []cacheShard
	perCap int

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

type cacheShard struct {
	mu  sync.Mutex
	lru *list.List // front = most recent; values are *cacheEntry
	m   map[string]*list.Element
}

type cacheEntry struct {
	key  string
	plan *zidian.Prepared
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Size      int     `json:"size"`
	Capacity  int     `json:"capacity"`
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	Evictions int64   `json:"evictions"`
	HitRate   float64 `json:"hitRate"`
}

const defaultCacheShards = 16

// NewPlanCache builds a cache holding at most capacity plans (minimum one
// per shard). Shards are fixed at construction.
func NewPlanCache(capacity int) *PlanCache {
	nShards := defaultCacheShards
	if capacity < nShards {
		nShards = max(1, capacity)
	}
	per := max(1, capacity/nShards)
	c := &PlanCache{shards: make([]cacheShard, nShards), perCap: per}
	for i := range c.shards {
		c.shards[i].lru = list.New()
		c.shards[i].m = make(map[string]*list.Element)
	}
	return c
}

func (c *PlanCache) shard(key string) *cacheShard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return &c.shards[h.Sum32()%uint32(len(c.shards))]
}

// Get returns the cached plan for the normalized key, marking it most
// recently used.
func (c *PlanCache) Get(key string) (*zidian.Prepared, bool) {
	s := c.shard(key)
	s.mu.Lock()
	el, ok := s.m[key]
	if ok {
		s.lru.MoveToFront(el)
	}
	s.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return el.Value.(*cacheEntry).plan, true
}

// Put stores a compiled plan under the normalized key, evicting the shard's
// least-recently-used entry if it is full. Racing Puts of the same key keep
// the latest plan; both compile to equivalent plans so either is correct.
func (c *PlanCache) Put(key string, plan *zidian.Prepared) {
	s := c.shard(key)
	s.mu.Lock()
	if el, ok := s.m[key]; ok {
		el.Value.(*cacheEntry).plan = plan
		s.lru.MoveToFront(el)
		s.mu.Unlock()
		return
	}
	s.m[key] = s.lru.PushFront(&cacheEntry{key: key, plan: plan})
	var evicted int64
	for s.lru.Len() > c.perCap {
		oldest := s.lru.Back()
		s.lru.Remove(oldest)
		delete(s.m, oldest.Value.(*cacheEntry).key)
		evicted++
	}
	s.mu.Unlock()
	if evicted > 0 {
		c.evictions.Add(evicted)
	}
}

// Len returns the number of cached plans.
func (c *PlanCache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.lru.Len()
		s.mu.Unlock()
	}
	return n
}

// Stats snapshots hit/miss/eviction counters.
func (c *PlanCache) Stats() CacheStats {
	st := CacheStats{
		Size:      c.Len(),
		Capacity:  c.perCap * len(c.shards),
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
	}
	if total := st.Hits + st.Misses; total > 0 {
		st.HitRate = float64(st.Hits) / float64(total)
	}
	return st
}

// Workload capture: the serving layer can stream one JSON line per finished
// statement to a sink, recording the statement's anonymized template, the
// kinds of its bound values (never the values themselves), its arrival-time
// offset, session, and outcome. The resulting file is a replayable workload
// description: zidian-loadgen -replay re-drives the same template mix with
// synthesized binds, and zidian-bench -exp replay turns any captured run into
// a before/after comparison.
package server

import (
	"encoding/json"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"zidian/internal/relation"
)

// AnonymizeSQL rewrites a NormalizeSQL-normalized statement into its
// statistics/capture template: every literal becomes a `?` placeholder and
// the kind of each replaced or bound value is reported positionally, so two
// statements differing only in constants share one template and no literal
// value ever reaches a capture file. params are the statement's bound values
// (for `?` placeholders already present in the text); they contribute their
// kinds in position. Rules:
//
//   - '-quoted string literals (including ” escapes) become ? with kind
//     "string";
//   - numeric literals become ? with kind "int" or "float" — except a number
//     directly after the keyword `limit`, which is kept verbatim: a LIMIT
//     count is plan shape, not data, and replaying it with a random bind
//     would change the statement's cost class;
//   - pre-existing ? placeholders stay and take their kind from params;
//   - "-quoted regions (quoted identifiers) and everything else copy
//     verbatim.
func AnonymizeSQL(norm string, params []relation.Value) (string, []string) {
	var b []byte
	var binds []string
	paramIdx := 0
	lastWord := ""
	isWordByte := func(c byte) bool {
		return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || ('0' <= c && c <= '9')
	}
	for i := 0; i < len(norm); {
		c := norm[i]
		switch {
		case c == '\'':
			// String literal → placeholder; skip the body honoring '' escapes.
			i++
			for i < len(norm) {
				if norm[i] == '\'' {
					if i+1 < len(norm) && norm[i+1] == '\'' {
						i += 2
						continue
					}
					i++
					break
				}
				i++
			}
			b = append(b, '?')
			binds = append(binds, "string")
			lastWord = ""
		case c == '"':
			// Quoted identifier: verbatim.
			b = append(b, c)
			i++
			for i < len(norm) {
				b = append(b, norm[i])
				if norm[i] == '"' {
					i++
					break
				}
				i++
			}
			lastWord = ""
		case c == '?':
			b = append(b, '?')
			if paramIdx < len(params) {
				binds = append(binds, bindKind(params[paramIdx]))
			} else {
				binds = append(binds, "any")
			}
			paramIdx++
			i++
			lastWord = ""
		case c >= '0' && c <= '9',
			c == '-' && i+1 < len(norm) && norm[i+1] >= '0' && norm[i+1] <= '9':
			start := i
			if c == '-' {
				i++
			}
			isFloat := false
			for i < len(norm) && ((norm[i] >= '0' && norm[i] <= '9') || norm[i] == '.') {
				if norm[i] == '.' {
					isFloat = true
				}
				i++
			}
			// Digits glued to an identifier head (T1, sess_2) are part of
			// the identifier per the word scan below — this branch only
			// fires when the previous byte was not a word byte, so a bare
			// digit run here is always a literal.
			if lastWord == "limit" {
				b = append(b, norm[start:i]...)
			} else {
				b = append(b, '?')
				if isFloat {
					binds = append(binds, "float")
				} else {
					binds = append(binds, "int")
				}
			}
			lastWord = ""
		case isWordByte(c):
			start := i
			for i < len(norm) && isWordByte(norm[i]) {
				i++
			}
			word := norm[start:i]
			b = append(b, word...)
			lastWord = word
		default:
			b = append(b, c)
			i++
			if c != ' ' {
				lastWord = ""
			}
		}
	}
	return string(b), binds
}

// anonCache memoizes AnonymizeSQL keyed by the normalized statement text.
// A serving workload is a small set of templates repeated many times, and
// the rewrite costs several allocations per statement, so each server keeps
// one. Entries are computed with nil params; the kinds of a statement's own
// bound values are patched in per call (paramSlots marks which positions
// came from `?` placeholders — the only positions params can fill).
type anonCache struct {
	m sync.Map // norm string → *anonEntry
	n atomic.Int64
}

// anonCacheMax bounds the cache: distinct normalized texts past the cap
// (an unparameterized workload embeds its literals in norm, so the key
// space can be unbounded) are rewritten directly and not stored.
const anonCacheMax = 4096

type anonEntry struct {
	template   string
	binds      []string // kinds with `?` placeholders unresolved ("any")
	paramSlots []int    // positions in binds filled from the caller's params
}

func (c *anonCache) anonymize(norm string, params []relation.Value) (string, []string) {
	if v, ok := c.m.Load(norm); ok {
		e := v.(*anonEntry)
		return e.template, e.resolve(params)
	}
	if c.n.Load() >= anonCacheMax {
		return AnonymizeSQL(norm, params)
	}
	template, binds := AnonymizeSQL(norm, nil)
	e := &anonEntry{template: template, binds: binds}
	// With nil params every `?` placeholder reports kind "any", and nothing
	// else can: literal rewrites always know their kind.
	for i, k := range binds {
		if k == "any" {
			e.paramSlots = append(e.paramSlots, i)
		}
	}
	if _, loaded := c.m.LoadOrStore(norm, e); !loaded {
		c.n.Add(1)
	}
	return e.template, e.resolve(params)
}

// resolve returns the entry's bind kinds with params' kinds substituted at
// the placeholder positions. The shared slice is returned as-is when there
// is nothing to patch; callers treat bind lists as read-only.
func (e *anonEntry) resolve(params []relation.Value) []string {
	if len(e.paramSlots) == 0 || len(params) == 0 {
		return e.binds
	}
	out := make([]string, len(e.binds))
	copy(out, e.binds)
	for i, at := range e.paramSlots {
		if i >= len(params) {
			break
		}
		out[at] = bindKind(params[i])
	}
	return out
}

// bindKind names a bound value's kind for the capture stream.
func bindKind(v relation.Value) string {
	switch v.Kind {
	case relation.KindInt:
		return "int"
	case relation.KindFloat:
		return "float"
	case relation.KindString:
		return "string"
	default:
		return "any"
	}
}

// CaptureEntry is one line of a workload capture file. It holds the
// statement's shape and timing, never its data: Template is the anonymized
// text and Binds records only the kind of each bound or replaced literal.
type CaptureEntry struct {
	// DTMicros is the statement's start offset from capture start, in
	// microseconds; replay paces by these deltas.
	DTMicros int64 `json:"dtMicros"`
	// Session identifies the originating connection (0 for HTTP), so replay
	// can preserve per-session ordering.
	Session uint64 `json:"session,omitempty"`
	// Verb is the serving-layer verb (select, insert, delete, ddl, ...).
	Verb string `json:"verb"`
	// Template is the anonymized normalized statement.
	Template string `json:"template"`
	// Binds are the kinds of the statement's bound values, in placeholder
	// order: "int", "float", "string", or "any".
	Binds []string `json:"binds,omitempty"`
	// Rows is the result row count (SELECT) or affected count (write).
	Rows int64 `json:"rows,omitempty"`
	// OK records the outcome; replay skips nothing but reports mismatches.
	OK bool `json:"ok"`
}

// captureLog serializes capture entries to a sink, one JSON line each.
type captureLog struct {
	mu    sync.Mutex
	w     io.Writer
	start time.Time
}

func newCaptureLog(w io.Writer) *captureLog {
	if w == nil {
		return nil
	}
	return &captureLog{w: w, start: time.Now()}
}

// record appends one finished statement. nil-safe so the hot path can call
// it unconditionally.
func (l *captureLog) record(e CaptureEntry) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	e.DTMicros = time.Since(l.start).Microseconds()
	line, err := json.Marshal(e)
	if err != nil {
		return
	}
	l.w.Write(append(line, '\n'))
}

// RotatingFile is an append-only log sink with one-deep rotation: Rotate
// closes the current file, moves it to path+".1" (replacing any previous
// rotation), and reopens the path truncated. The slow-query log uses it to
// honor its byte cap without losing the most recent window.
type RotatingFile struct {
	mu   sync.Mutex
	path string
	f    *os.File
}

// OpenRotatingFile opens (or creates, appending) path as a rotating sink.
func OpenRotatingFile(path string) (*RotatingFile, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &RotatingFile{path: path, f: f}, nil
}

// Write appends to the current file.
func (r *RotatingFile) Write(p []byte) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.f == nil {
		return 0, os.ErrClosed
	}
	return r.f.Write(p)
}

// Rotate moves the current file aside to path+".1" and starts fresh.
func (r *RotatingFile) Rotate() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.f == nil {
		return os.ErrClosed
	}
	if err := r.f.Close(); err != nil {
		return err
	}
	if err := os.Rename(r.path, r.path+".1"); err != nil && !os.IsNotExist(err) {
		return err
	}
	f, err := os.OpenFile(r.path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		r.f = nil
		return err
	}
	r.f = f
	return nil
}

// Close closes the underlying file.
func (r *RotatingFile) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.f == nil {
		return nil
	}
	err := r.f.Close()
	r.f = nil
	return err
}

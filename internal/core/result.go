package core

import (
	"fmt"
	"sort"

	"zidian/internal/baav"
	"zidian/internal/kba"
	"zidian/internal/ra"
	"zidian/internal/relation"
)

// ToResult converts an executed plan output into the query's relational
// answer: output columns are selected by name, then ORDER BY and LIMIT are
// applied.
func (p *PlanInfo) ToResult(rel *kba.KeyedRel) (*ra.Result, error) {
	res := &ra.Result{Cols: p.Query.OutNames}
	if p.Empty {
		return res, nil
	}
	attrs := rel.Attrs()
	pos := make(map[string]int, len(attrs))
	for i, a := range attrs {
		pos[a] = i
	}
	idx := make([]int, len(p.OutCols))
	for i, c := range p.OutCols {
		j, ok := pos[c]
		if !ok {
			return nil, fmt.Errorf("core: plan output missing column %q (have %v)", c, attrs)
		}
		idx[i] = j
	}
	for _, row := range rel.Flatten() {
		res.Rows = append(res.Rows, row.Project(idx))
	}
	if len(p.Query.OrderBy) > 0 {
		keyIdx := make([]int, len(p.Query.OrderBy))
		for i, k := range p.Query.OrderBy {
			keyIdx[i] = -1
			for j, n := range p.Query.OutNames {
				if n == k.Name {
					keyIdx[i] = j
					break
				}
			}
			if keyIdx[i] < 0 {
				return nil, fmt.Errorf("core: ORDER BY column %q missing", k.Name)
			}
		}
		keys := p.Query.OrderBy
		sort.SliceStable(res.Rows, func(a, b int) bool {
			for i, k := range keys {
				c := relation.Compare(res.Rows[a][keyIdx[i]], res.Rows[b][keyIdx[i]])
				if c != 0 {
					if k.Desc {
						return c > 0
					}
					return c < 0
				}
			}
			return false
		})
	}
	if p.Query.Limit >= 0 && len(res.Rows) > p.Query.Limit {
		res.Rows = res.Rows[:p.Query.Limit]
	}
	return res, nil
}

// Answer plans nothing: it executes an already generated plan sequentially
// on the store and shapes the relational answer, returning the data-access
// statistics of the run.
func Answer(info *PlanInfo, store *baav.Store) (*ra.Result, *kba.ExecStats, error) {
	if info.Empty {
		res, err := info.ToResult(nil)
		return res, &kba.ExecStats{}, err
	}
	exec := kba.NewExecutor(store)
	out, err := exec.Run(info.Root)
	if err != nil {
		return nil, nil, err
	}
	res, err := info.ToResult(out)
	if err != nil {
		return nil, nil, err
	}
	return res, exec.Stats, nil
}

package core

import (
	"strings"
	"testing"

	"zidian/internal/baav"
	"zidian/internal/kba"
	"zidian/internal/ra"
	"zidian/internal/relation"
)

// fakeCatalog is a canned IndexCatalog for planner unit tests.
type fakeCatalog struct {
	rel, attr, name string
	key             []string
	avg             int
	entries         int // distinct values; 0 defaults to 100
	// min/max, when both set, are the index's value bounds (nil: no
	// statistics, so the planner keeps the shape-only fractions).
	min, max *relation.Value
}

func (f *fakeCatalog) IndexOn(rel, attr string) (string, []string, bool) {
	if rel == f.rel && attr == f.attr {
		return f.name, f.key, true
	}
	return "", nil, false
}

func (f *fakeCatalog) AvgPostings(string) int { return f.avg }

func (f *fakeCatalog) ValueBounds(string) (relation.Value, relation.Value, bool) {
	if f.min == nil || f.max == nil {
		return relation.Value{}, relation.Value{}, false
	}
	return *f.min, *f.max, true
}

func (f *fakeCatalog) Shape(string) (int, int) {
	n := f.entries
	if n == 0 {
		n = 100
	}
	return n, n * f.avg
}

// fakeStats is a canned PlanStats with a fixed per-instance block count.
type fakeStats struct{ blocks int }

func (f *fakeStats) InstanceBlocks(string) int { return f.blocks }
func (f *fakeStats) RelationRows(string) int   { return f.blocks }
func (f *fakeStats) HasBlockStats() bool       { return false }

// indexFixture: one relation keyed by id, one full KV schema keyed by id —
// so a predicate on attr can only be answered by a scan or an index.
func indexFixture(t *testing.T) (*relation.Database, *Checker) {
	t.Helper()
	db := relation.NewDatabase()
	item := relation.NewRelation(relation.MustSchema("ITEM", []relation.Attr{
		{Name: "id", Kind: relation.KindInt},
		{Name: "sku", Kind: relation.KindString},
		{Name: "qty", Kind: relation.KindInt},
	}, []string{"id"}))
	db.Add(item)
	schema := baav.MustSchema(baav.RelSchemas(db),
		baav.KVSchema{Name: "item_full", Rel: "ITEM", Key: []string{"id"}, Val: []string{"sku", "qty"}},
	)
	return db, NewChecker(schema, baav.RelSchemas(db))
}

func hasIndexLookup(p kba.Plan) bool {
	if _, ok := p.(*kba.IndexLookup); ok {
		return true
	}
	for _, c := range p.Children() {
		if hasIndexLookup(c) {
			return true
		}
	}
	return false
}

func TestPlannerPicksIndexLookup(t *testing.T) {
	db, c := indexFixture(t)
	c.WithStats(&fakeStats{blocks: 1000}).
		WithIndexes(&fakeCatalog{rel: "ITEM", attr: "sku", name: "ix_sku", key: []string{"id"}, avg: 4})
	q := ra.MustParse("select I.id, I.qty from ITEM I where I.sku = 'S'", db)
	info, err := c.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	if !hasIndexLookup(info.Root) {
		t.Fatalf("plan has no IndexLookup: %s", info.Root)
	}
	if !info.ScanFree {
		t.Fatalf("index plan not scan-free: %s", info.Root)
	}
	if len(info.Indexes) != 1 || info.Indexes[0] != "ix_sku" {
		t.Fatalf("info.Indexes = %v", info.Indexes)
	}
	if len(info.Scans) != 0 {
		t.Fatalf("index plan still scans %v", info.Scans)
	}
	if !strings.Contains(info.Root.String(), "IndexLookup[ix_sku") {
		t.Fatalf("plan rendering lacks IndexLookup: %s", info.Root)
	}
}

// TestPlannerIndexCost: with a tiny instance the 4× get-vs-scan-step ratio
// makes the scan cheaper, so the planner must not take the index.
func TestPlannerIndexCost(t *testing.T) {
	db, c := indexFixture(t)
	c.WithStats(&fakeStats{blocks: 8}).
		WithIndexes(&fakeCatalog{rel: "ITEM", attr: "sku", name: "ix_sku", key: []string{"id"}, avg: 4})
	q := ra.MustParse("select I.id, I.qty from ITEM I where I.sku = 'S'", db)
	info, err := c.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	if hasIndexLookup(info.Root) {
		t.Fatalf("planner took the index over a cheaper scan: %s", info.Root)
	}
	if len(info.Scans) != 1 {
		t.Fatalf("expected a scan plan, got %s", info.Root)
	}
}

// TestPlannerIndexIN: an IN list becomes one IndexLookup over all values.
func TestPlannerIndexIN(t *testing.T) {
	db, c := indexFixture(t)
	c.WithStats(&fakeStats{blocks: 1000}).
		WithIndexes(&fakeCatalog{rel: "ITEM", attr: "sku", name: "ix_sku", key: []string{"id"}, avg: 4})
	q := ra.MustParse("select I.id from ITEM I where I.sku in ('A', 'B', 'C')", db)
	info, err := c.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	var lk *kba.IndexLookup
	var find func(p kba.Plan)
	find = func(p kba.Plan) {
		if n, ok := p.(*kba.IndexLookup); ok {
			lk = n
		}
		for _, ch := range p.Children() {
			find(ch)
		}
	}
	find(info.Root)
	if lk == nil {
		t.Fatalf("no IndexLookup in %s", info.Root)
	}
	if len(lk.Values) != 3 {
		t.Fatalf("lookup values = %v", lk.Values)
	}
}

// TestPlannerIndexWithoutCatalog: no catalog, no index path — the fallback
// scan must still work.
func TestPlannerIndexWithoutCatalog(t *testing.T) {
	db, c := indexFixture(t)
	c.WithStats(&fakeStats{blocks: 1000})
	q := ra.MustParse("select I.id from ITEM I where I.sku = 'S'", db)
	info, err := c.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	if hasIndexLookup(info.Root) {
		t.Fatal("IndexLookup planned without a catalog")
	}
	if len(info.Scans) != 1 {
		t.Fatalf("expected scan fallback, got %s", info.Root)
	}
}

// TestPlannerIndexAnchorRequired: the index is only usable when a KV schema
// keyed by the posted block keys covers the atom; here the posted key does
// not match any schema, so the planner must fall back to the scan.
func TestPlannerIndexAnchorRequired(t *testing.T) {
	db, c := indexFixture(t)
	c.WithStats(&fakeStats{blocks: 1000}).
		WithIndexes(&fakeCatalog{rel: "ITEM", attr: "sku", name: "ix_sku", key: []string{"id", "qty"}, avg: 4})
	q := ra.MustParse("select I.id from ITEM I where I.sku = 'S'", db)
	info, err := c.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	if hasIndexLookup(info.Root) {
		t.Fatalf("IndexLookup planned without a matching anchor schema: %s", info.Root)
	}
}

// TestPlannerIndexJoin: the index seeds one atom of a join; the other atom
// still anchors through its keyed schema, keeping the whole plan scan-free.
func TestPlannerIndexJoin(t *testing.T) {
	db := relation.NewDatabase()
	item := relation.NewRelation(relation.MustSchema("ITEM", []relation.Attr{
		{Name: "id", Kind: relation.KindInt},
		{Name: "sku", Kind: relation.KindString},
	}, []string{"id"}))
	db.Add(item)
	stock := relation.NewRelation(relation.MustSchema("STOCK", []relation.Attr{
		{Name: "sid", Kind: relation.KindInt},
		{Name: "item_id", Kind: relation.KindInt},
		{Name: "qty", Kind: relation.KindInt},
	}, []string{"sid"}))
	db.Add(stock)
	schema := baav.MustSchema(baav.RelSchemas(db),
		baav.KVSchema{Name: "item_full", Rel: "ITEM", Key: []string{"id"}, Val: []string{"sku"}},
		baav.KVSchema{Name: "stock_by_item", Rel: "STOCK", Key: []string{"item_id"}, Val: []string{"sid", "qty"}},
	)
	c := NewChecker(schema, baav.RelSchemas(db)).
		WithStats(&fakeStats{blocks: 1000}).
		WithIndexes(&fakeCatalog{rel: "ITEM", attr: "sku", name: "ix_sku", key: []string{"id"}, avg: 2})
	q := ra.MustParse(
		"select S.sid, S.qty from ITEM I, STOCK S where I.sku = 'S' and S.item_id = I.id", db)
	info, err := c.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	if !hasIndexLookup(info.Root) {
		t.Fatalf("join plan has no IndexLookup: %s", info.Root)
	}
	if !info.ScanFree || len(info.Scans) != 0 {
		t.Fatalf("join plan not scan-free: %s (scans %v)", info.Root, info.Scans)
	}
}

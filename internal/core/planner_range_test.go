package core

import (
	"strings"
	"testing"

	"zidian/internal/kba"
	"zidian/internal/ra"
	"zidian/internal/relation"
)

func findIndexRange(p kba.Plan) *kba.IndexRange {
	if n, ok := p.(*kba.IndexRange); ok {
		return n
	}
	for _, c := range p.Children() {
		if r := findIndexRange(c); r != nil {
			return r
		}
	}
	return nil
}

// rangeCatalog: 1000 blocks, 250 distinct values × 4 postings — selective
// enough that a two-sided range beats the scan (matched ≈ 250/8 = 32,
// probes ≈ 32×5 = 160, 4×160 = 640 < 1000).
func rangeFixture(t *testing.T) (*Checker, *fakeCatalog) {
	t.Helper()
	_, c := indexFixture(t)
	cat := &fakeCatalog{rel: "ITEM", attr: "sku", name: "ix_sku", key: []string{"id"}, avg: 4, entries: 250}
	c.WithStats(&fakeStats{blocks: 1000}).WithIndexes(cat)
	return c, cat
}

func TestPlannerPicksIndexRange(t *testing.T) {
	c, _ := rangeFixture(t)
	db, _ := indexFixture(t)
	q := ra.MustParse("select I.id, I.qty from ITEM I where I.sku between 'A' and 'B'", db)
	info, err := c.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	r := findIndexRange(info.Root)
	if r == nil {
		t.Fatalf("plan has no IndexRange: %s", info.Root)
	}
	if r.Lo == nil || r.Hi == nil || !r.LoIncl || !r.HiIncl {
		t.Fatalf("BETWEEN must become a closed two-sided range: %s", r)
	}
	if r.Lo.Lit.Str != "A" || r.Hi.Lit.Str != "B" {
		t.Fatalf("bounds = %s", r)
	}
	if info.ScanFree {
		t.Fatalf("range plan claimed scan-free (the posting walk is a bounded scan): %s", info.Root)
	}
	if len(info.Scans) != 0 {
		t.Fatalf("range plan still scans an instance: %v", info.Scans)
	}
	if len(info.Ranges) != 1 || info.Ranges[0] != "ix_sku" {
		t.Fatalf("info.Ranges = %v", info.Ranges)
	}
	// The residual selection must re-verify the range predicate.
	if !strings.Contains(info.Root.String(), "I.sku>=") || !strings.Contains(info.Root.String(), "I.sku<=") {
		t.Fatalf("residual range predicates missing: %s", info.Root)
	}
}

// TestPlannerRangeOpenBounds: strict comparisons keep their open ends.
func TestPlannerRangeOpenBounds(t *testing.T) {
	c, _ := rangeFixture(t)
	db, _ := indexFixture(t)
	q := ra.MustParse("select I.id from ITEM I where I.sku > 'A' and I.sku < 'B'", db)
	info, err := c.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	r := findIndexRange(info.Root)
	if r == nil {
		t.Fatalf("no IndexRange: %s", info.Root)
	}
	if r.LoIncl || r.HiIncl {
		t.Fatalf("strict bounds must stay open: %s", r)
	}
}

// TestPlannerRangeTightensLiteralBounds: redundant literal conjuncts
// collapse to the strictest pair.
func TestPlannerRangeTightensLiteralBounds(t *testing.T) {
	c, _ := rangeFixture(t)
	db, _ := indexFixture(t)
	q := ra.MustParse(
		"select I.id from ITEM I where I.sku >= 'A' and I.sku > 'C' and I.sku <= 'Z' and I.sku < 'X'", db)
	info, err := c.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	r := findIndexRange(info.Root)
	if r == nil {
		t.Fatalf("no IndexRange: %s", info.Root)
	}
	if r.Lo.Lit.Str != "C" || r.LoIncl {
		t.Fatalf("lower bound not tightened: %s", r)
	}
	if r.Hi.Lit.Str != "X" || r.HiIncl {
		t.Fatalf("upper bound not tightened: %s", r)
	}
}

// TestPlannerRangeTemplate: `?` bounds keep the same access path as
// literals (shape-only decision) and carry slot args for Bind.
func TestPlannerRangeTemplate(t *testing.T) {
	c, _ := rangeFixture(t)
	db, _ := indexFixture(t)
	q := ra.MustParse("select I.id from ITEM I where I.sku between ? and ?", db)
	info, err := c.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	r := findIndexRange(info.Root)
	if r == nil {
		t.Fatalf("template plan has no IndexRange: %s", info.Root)
	}
	if r.Lo == nil || !r.Lo.IsSlot || r.Lo.Slot != 0 || r.Hi == nil || !r.Hi.IsSlot || r.Hi.Slot != 1 {
		t.Fatalf("template bounds = %s", r)
	}
	if !kba.HasParams(info.Root) {
		t.Fatal("template not reported as parameterized")
	}
	bound, err := info.Bind([]relation.Value{relation.String("A"), relation.String("B")})
	if err != nil {
		t.Fatal(err)
	}
	br := findIndexRange(bound.Root)
	if br.Lo.IsSlot || br.Hi.IsSlot || br.Lo.Lit.Str != "A" || br.Hi.Lit.Str != "B" {
		t.Fatalf("bound range = %s", br)
	}
	if kba.HasParams(bound.Root) {
		t.Fatal("bound plan still parameterized")
	}
	// One-sided template.
	q2 := ra.MustParse("select I.id from ITEM I where I.sku >= ?", db)
	info2, err := c.Plan(q2)
	if err != nil {
		t.Fatal(err)
	}
	// One-sided ranges on this shape lose to the scan (matched ≈ 1/3 of the
	// entries); the plan must fall back without error.
	if findIndexRange(info2.Root) != nil {
		t.Fatalf("one-sided range took the index against the cost model: %s", info2.Root)
	}
	if len(info2.Scans) != 1 {
		t.Fatalf("expected scan fallback: %s", info2.Root)
	}
}

// TestPlannerRangeValueBounds: with min/max statistics, literal bounds
// interpolate — a narrow slice of the domain beats the scan where the
// shape-only guess refused it, a window outside the domain estimates zero,
// and slot bounds keep the shape fractions (template discipline).
func TestPlannerRangeValueBounds(t *testing.T) {
	db, _ := indexFixture(t)
	newChecker := func(min, max *relation.Value) *Checker {
		_, c := indexFixture(t)
		c.WithStats(&fakeStats{blocks: 1000}).
			WithIndexes(&fakeCatalog{rel: "ITEM", attr: "qty", name: "ix_qty",
				key: []string{"id"}, avg: 4, entries: 250, min: min, max: max})
		return c
	}
	lo, hi := relation.Int(0), relation.Int(999)

	// Shape-only 1/3: matched 84, probes 420, 4×420 > 1000 → scan.
	q := ra.MustParse("select I.id from ITEM I where I.qty >= 990", db)
	info, err := newChecker(nil, nil).Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	if findIndexRange(info.Root) != nil {
		t.Fatalf("one-sided range took the walk without statistics: %s", info.Root)
	}
	// Interpolated: (999−990)/999 of 250 entries ≈ 3 lists → walk wins.
	info, err = newChecker(&lo, &hi).Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	if findIndexRange(info.Root) == nil {
		t.Fatalf("selective one-sided literal range still scans with min/max: %s", info.Root)
	}
	// Unselective stays a scan even with statistics.
	q2 := ra.MustParse("select I.id from ITEM I where I.qty >= 100", db)
	info, err = newChecker(&lo, &hi).Plan(q2)
	if err != nil {
		t.Fatal(err)
	}
	if findIndexRange(info.Root) != nil {
		t.Fatalf("unselective range took the walk: %s", info.Root)
	}
	// A window past the domain estimates zero matched lists → walk wins.
	q3 := ra.MustParse("select I.id from ITEM I where I.qty between 2000 and 3000", db)
	info, err = newChecker(&lo, &hi).Plan(q3)
	if err != nil {
		t.Fatal(err)
	}
	if findIndexRange(info.Root) == nil {
		t.Fatalf("out-of-domain window scanned instead of walking nothing: %s", info.Root)
	}
	// Slot bounds must plan like the stat-less case.
	q4 := ra.MustParse("select I.id from ITEM I where I.qty >= ?", db)
	info, err = newChecker(&lo, &hi).Plan(q4)
	if err != nil {
		t.Fatal(err)
	}
	if findIndexRange(info.Root) != nil {
		t.Fatalf("`?` bound planned value-dependently: %s", info.Root)
	}
}

// TestPlannerRangeLimitPushdown: the qualifying shape carries the query's
// LIMIT into the IndexRange leaf — as a literal or a slot — and
// disqualifying shapes do not.
func TestPlannerRangeLimitPushdown(t *testing.T) {
	c, _ := rangeFixture(t)
	db, _ := indexFixture(t)
	q := ra.MustParse("select I.id from ITEM I where I.sku between 'A' and 'B' limit 5", db)
	info, err := c.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	r := findIndexRange(info.Root)
	if r == nil || r.Limit == nil || r.Limit.IsSlot || r.Limit.Lit.Int != 5 {
		t.Fatalf("LIMIT 5 not pushed into the walk: %s", info.Root)
	}
	q2 := ra.MustParse("select I.id from ITEM I where I.sku between ? and ? limit ?", db)
	info, err = c.Plan(q2)
	if err != nil {
		t.Fatal(err)
	}
	r = findIndexRange(info.Root)
	if r == nil || r.Limit == nil || !r.Limit.IsSlot || r.Limit.Slot != 2 {
		t.Fatalf("LIMIT ? not pushed as a slot: %s", info.Root)
	}
	bound, err := info.Bind([]relation.Value{relation.String("A"), relation.String("B"), relation.Int(7)})
	if err != nil {
		t.Fatal(err)
	}
	br := findIndexRange(bound.Root)
	if br.Limit == nil || br.Limit.IsSlot || br.Limit.Lit.Int != 7 {
		t.Fatalf("bound limit = %s", bound.Root)
	}
	// An extra predicate on another attribute can drop walked postings.
	q3 := ra.MustParse("select I.id from ITEM I where I.sku between 'A' and 'B' and I.qty > 3 limit 5", db)
	info, err = c.Plan(q3)
	if err != nil {
		t.Fatal(err)
	}
	if r := findIndexRange(info.Root); r != nil && r.Limit != nil {
		t.Fatalf("limit pushed despite a residual predicate: %s", info.Root)
	}
	// A slot conjunct the literal bound merge dropped stays residual and
	// can be stricter than the walk's fence; stopping at the limit would
	// discard rows the residual admits later in the range (regression: the
	// exactness check used to consider only the surviving bound).
	q4 := ra.MustParse("select I.id from ITEM I where I.sku >= 'A' and I.sku <= 'B' and I.sku >= ? limit 2", db)
	info, err = c.Plan(q4)
	if err != nil {
		t.Fatal(err)
	}
	if r := findIndexRange(info.Root); r != nil && r.Limit != nil {
		t.Fatalf("limit pushed despite an unenforced slot conjunct: %s", info.Root)
	}
}

// TestPlanInfoRelations: every plan records the sorted base-relation set
// its execution reads — the serving layer's lock set.
func TestPlanInfoRelations(t *testing.T) {
	c, _ := rangeFixture(t)
	db, _ := indexFixture(t)
	q := ra.MustParse("select I.id from ITEM I where I.sku between 'A' and 'B'", db)
	info, err := c.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Relations) != 1 || info.Relations[0] != "ITEM" {
		t.Fatalf("Relations = %v, want [ITEM]", info.Relations)
	}
}

// TestPlannerRangeCost: a small instance or a wide range keeps the scan.
func TestPlannerRangeCost(t *testing.T) {
	db, _ := indexFixture(t)
	_, c := indexFixture(t)
	// Tiny instance: matched ≈ 16/8 = 2 lists → probes = 2×(1+4) = 10, and
	// 4×10 = 40 > 30 blocks, so the 4× ratio favours the scan.
	c.WithStats(&fakeStats{blocks: 30}).
		WithIndexes(&fakeCatalog{rel: "ITEM", attr: "sku", name: "ix_sku", key: []string{"id"}, avg: 4, entries: 16})
	q := ra.MustParse("select I.id from ITEM I where I.sku between 'A' and 'B'", db)
	info, err := c.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	if findIndexRange(info.Root) != nil {
		t.Fatalf("range path taken against the cost model: %s", info.Root)
	}
	if len(info.Scans) != 1 {
		t.Fatalf("expected scan plan: %s", info.Root)
	}
}

// TestPlannerRangeNeedsAnchor: without a pk-keyed covering schema for the
// posted block keys the range path is unusable.
func TestPlannerRangeNeedsAnchor(t *testing.T) {
	db, _ := indexFixture(t)
	_, c := indexFixture(t)
	c.WithStats(&fakeStats{blocks: 1000}).
		WithIndexes(&fakeCatalog{rel: "ITEM", attr: "sku", name: "ix_sku", key: []string{"id", "qty"}, avg: 4, entries: 250})
	q := ra.MustParse("select I.id from ITEM I where I.sku between 'A' and 'B'", db)
	info, err := c.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	if findIndexRange(info.Root) != nil {
		t.Fatalf("IndexRange planned without a matching anchor schema: %s", info.Root)
	}
}

// TestPlannerRangeEqualityWins: an equality pin on the same attribute keeps
// the IndexLookup path; the range conjunct stays residual.
func TestPlannerRangeEqualityWins(t *testing.T) {
	c, _ := rangeFixture(t)
	db, _ := indexFixture(t)
	q := ra.MustParse("select I.id from ITEM I where I.sku = 'A' and I.sku <= 'B'", db)
	info, err := c.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	if findIndexRange(info.Root) != nil {
		t.Fatalf("range path taken over the equality lookup: %s", info.Root)
	}
	if !hasIndexLookup(info.Root) {
		t.Fatalf("equality pin lost the lookup path: %s", info.Root)
	}
}

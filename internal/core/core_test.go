package core

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"zidian/internal/baav"
	"zidian/internal/kba"
	"zidian/internal/kv"
	"zidian/internal/ra"
	"zidian/internal/relation"
)

// fixture builds the paper's Example 1 schema with a randomized instance of
// moderate size, its BaaV schema ~R1, and the mapped store.
func fixture(t *testing.T, seed int64) (*relation.Database, *baav.Store, *Checker) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	db := relation.NewDatabase()

	names := []string{"GERMANY", "FRANCE", "KENYA", "PERU", "JAPAN"}
	nation := relation.NewRelation(relation.MustSchema("NATION",
		[]relation.Attr{{Name: "nationkey", Kind: relation.KindInt}, {Name: "name", Kind: relation.KindString}},
		[]string{"nationkey"}))
	for i, n := range names {
		nation.MustInsert(relation.Tuple{relation.Int(int64(i + 1)), relation.String(n)})
	}
	db.Add(nation)

	supplier := relation.NewRelation(relation.MustSchema("SUPPLIER",
		[]relation.Attr{{Name: "suppkey", Kind: relation.KindInt}, {Name: "nationkey", Kind: relation.KindInt}},
		[]string{"suppkey"}))
	for i := 0; i < 40; i++ {
		supplier.MustInsert(relation.Tuple{relation.Int(int64(i)), relation.Int(int64(r.Intn(len(names)) + 1))})
	}
	db.Add(supplier)

	partsupp := relation.NewRelation(relation.MustSchema("PARTSUPP",
		[]relation.Attr{
			{Name: "partkey", Kind: relation.KindInt}, {Name: "suppkey", Kind: relation.KindInt},
			{Name: "supplycost", Kind: relation.KindInt}, {Name: "availqty", Kind: relation.KindInt},
		},
		[]string{"partkey", "suppkey"}))
	for i := 0; i < 200; i++ {
		partsupp.MustInsert(relation.Tuple{
			relation.Int(int64(r.Intn(30))), relation.Int(int64(r.Intn(40))),
			relation.Int(int64(r.Intn(50))), relation.Int(int64(r.Intn(20))),
		})
	}
	db.Add(partsupp)

	schema := baav.MustSchema(baav.RelSchemas(db),
		baav.KVSchema{Name: "NATION_by_name", Rel: "NATION", Key: []string{"name"}, Val: []string{"nationkey"}},
		baav.KVSchema{Name: "SUPPLIER_by_nation", Rel: "SUPPLIER", Key: []string{"nationkey"}, Val: []string{"suppkey"}},
		baav.KVSchema{Name: "PARTSUPP_by_supp", Rel: "PARTSUPP", Key: []string{"suppkey"}, Val: []string{"partkey", "supplycost", "availqty"}},
	)
	store, err := baav.Map(db, schema, kv.NewCluster(kv.EngineHash, 3), baav.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return db, store, NewChecker(schema, baav.RelSchemas(db))
}

const paperQ1 = `select PS.suppkey, SUM(PS.supplycost)
	from PARTSUPP as PS, SUPPLIER as S, NATION as N
	where PS.suppkey = S.suppkey and S.nationkey = N.nationkey and N.name = 'GERMANY'
	group by PS.suppkey`

func TestPkOf(t *testing.T) {
	_, _, c := fixture(t, 1)
	if pk := c.pkOf(*c.Schema.ByName("PARTSUPP_by_supp")); len(pk) != 2 {
		t.Fatalf("pk = %v (schema contains partkey+suppkey)", pk)
	}
	if pk := c.pkOf(*c.Schema.ByName("SUPPLIER_by_nation")); len(pk) != 1 || pk[0] != "suppkey" {
		t.Fatalf("pk = %v", pk)
	}
	// A schema missing part of the relation's key carries no pk.
	db, _, _ := fixture(t, 1)
	s2 := baav.MustSchema(baav.RelSchemas(db),
		baav.KVSchema{Name: "PS_partial", Rel: "PARTSUPP", Key: []string{"suppkey"}, Val: []string{"supplycost"}})
	c2 := NewChecker(s2, baav.RelSchemas(db))
	if pk := c2.pkOf(*s2.ByName("PS_partial")); pk != nil {
		t.Fatalf("pk = %v, want nil", pk)
	}
}

func TestDataPreservingExample4(t *testing.T) {
	_, _, c := fixture(t, 1)
	ok, missing := c.DataPreserving()
	if !ok {
		t.Fatalf("~R1 is data preserving for R1 (Example 4); missing %v", missing)
	}
}

func TestDataPreservingFailsForPrunedSchema(t *testing.T) {
	// Example 5's ~R'1: PARTSUPP without availqty is not data preserving.
	db, _, _ := fixture(t, 1)
	schema := baav.MustSchema(baav.RelSchemas(db),
		baav.KVSchema{Name: "NATION_by_name", Rel: "NATION", Key: []string{"name"}, Val: []string{"nationkey"}},
		baav.KVSchema{Name: "SUPPLIER_by_nation", Rel: "SUPPLIER", Key: []string{"nationkey"}, Val: []string{"suppkey"}},
		baav.KVSchema{Name: "PARTSUPP_prime", Rel: "PARTSUPP", Key: []string{"suppkey"}, Val: []string{"partkey", "supplycost"}},
	)
	c := NewChecker(schema, baav.RelSchemas(db))
	ok, missing := c.DataPreserving()
	if ok || len(missing) != 1 || missing[0] != "PARTSUPP" {
		t.Fatalf("ok=%v missing=%v", ok, missing)
	}
	// But it is result preserving for Q'1 (Example 5) — and even for Q2,
	// whose minimal equivalent query is Q'1.
	q1 := ra.MustParse(`select PS.suppkey, PS.supplycost
		from NATION N, SUPPLIER S, PARTSUPP PS
		where N.name = 'GERMANY' and N.nationkey = S.nationkey and S.suppkey = PS.suppkey`, db)
	if !c.ResultPreserving(q1) {
		t.Fatal("~R'1 must be result preserving for Q'1")
	}
	q2 := ra.MustParse(`select PS.suppkey, PS.supplycost
		from NATION N, SUPPLIER S, PARTSUPP PS, PARTSUPP PS2
		where N.name = 'GERMANY' and N.nationkey = S.nationkey and S.suppkey = PS.suppkey
		  and PS.partkey = PS2.partkey and PS.suppkey = PS2.suppkey
		  and PS.supplycost = PS2.supplycost and PS.availqty = PS2.availqty`, db)
	if !c.ResultPreserving(q2) {
		t.Fatal("~R'1 must be result preserving for Q2 via min(Q2) = Q'1 (Example 5)")
	}
	// A query that genuinely needs availqty is not preserved.
	q3 := ra.MustParse("select PS.availqty from PARTSUPP PS where PS.suppkey = 3", db)
	if c.ResultPreserving(q3) {
		t.Fatal("availqty is not recoverable from ~R'1")
	}
}

func TestCloExpandsThroughPrimaryKeys(t *testing.T) {
	db, _, _ := fixture(t, 1)
	// Two PARTSUPP schemas: one keyed by suppkey (carrying the pk), one
	// keyed by partkey with availqty. clo of the first reaches availqty
	// through the pk of the second.
	schema := baav.MustSchema(baav.RelSchemas(db),
		baav.KVSchema{Name: "PS_supp", Rel: "PARTSUPP", Key: []string{"suppkey"}, Val: []string{"partkey", "supplycost"}},
		baav.KVSchema{Name: "PS_part", Rel: "PARTSUPP", Key: []string{"partkey"}, Val: []string{"suppkey", "availqty"}},
	)
	c := NewChecker(schema, baav.RelSchemas(db))
	clo := c.Clo("PS_supp", nil)
	if !clo["availqty"] {
		t.Fatalf("clo = %v, must include availqty via pk expansion", clo)
	}
	if c.Clo("nope", nil) != nil {
		t.Fatal("unknown anchor yields nil")
	}
}

func TestGetSetExample6(t *testing.T) {
	db, _, c := fixture(t, 1)
	q := ra.MustParse(paperQ1, db)
	eq := ra.BuildEqClasses(q)
	get := c.GetSet(q, eq)
	for _, ref := range []ra.ColRef{
		{Alias: "N", Attr: "name"}, {Alias: "N", Attr: "nationkey"},
		{Alias: "S", Attr: "nationkey"}, {Alias: "S", Attr: "suppkey"},
		{Alias: "PS", Attr: "suppkey"}, {Alias: "PS", Attr: "supplycost"},
	} {
		if !get[eq.Find(ref)] {
			t.Fatalf("GET must contain %s", ref)
		}
	}
}

func TestScanFreeClassification(t *testing.T) {
	db, _, c := fixture(t, 1)
	cases := []struct {
		src  string
		want bool
	}{
		{paperQ1, true},
		// No constants: nothing seeds the chase.
		{"select S.suppkey from SUPPLIER S", false},
		{"select SUM(PS.supplycost) from PARTSUPP PS", false},
		// Constant on a non-key attribute of the only schema: not retrievable.
		{"select PS.partkey from PARTSUPP PS where PS.availqty = 3", false},
		// Point access through the chain is scan-free.
		{"select S.suppkey from SUPPLIER S, NATION N where S.nationkey = N.nationkey and N.name = 'KENYA'", true},
		{"select PS.partkey from PARTSUPP PS where PS.suppkey = 7", true},
		// IN seeds the chase like constants.
		{"select PS.partkey from PARTSUPP PS where PS.suppkey in (1, 2, 3)", true},
		// Filters on fetched attributes keep scan-freeness.
		{"select PS.partkey from PARTSUPP PS where PS.suppkey = 7 and PS.availqty > 5", true},
	}
	for _, tc := range cases {
		q := ra.MustParse(tc.src, db)
		if got := c.ScanFree(q); got != tc.want {
			t.Fatalf("ScanFree(%q) = %v, want %v", tc.src, got, tc.want)
		}
	}
}

func TestBounded(t *testing.T) {
	db, store, c := fixture(t, 1)
	q := ra.MustParse(paperQ1, db)
	if !c.Bounded(q, store, 1000) {
		t.Fatal("Q1 is bounded under a generous degree bound")
	}
	if c.Bounded(q, store, 1) {
		t.Fatal("degree bound 1 must fail (blocks are larger)")
	}
	agg := ra.MustParse("select SUM(PS.supplycost) from PARTSUPP PS", db)
	if c.Bounded(agg, store, 1000) {
		t.Fatal("non-scan-free queries are unbounded")
	}
}

func TestPlanPaperQ1(t *testing.T) {
	db, store, c := fixture(t, 1)
	q := ra.MustParse(paperQ1, db)
	info, err := c.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	if !info.ScanFree {
		t.Fatalf("ξ1 must be scan-free: %s", info.Root)
	}
	if len(info.Extends) != 3 || len(info.Scans) != 0 {
		t.Fatalf("extends=%v scans=%v", info.Extends, info.Scans)
	}
	// The plan is the chain of Example 7: const ∝ NATION ∝ SUPPLIER ∝ PARTSUPP.
	s := info.Root.String()
	if !strings.Contains(s, "NATION_by_name") || !strings.Contains(s, "PARTSUPP_by_supp") {
		t.Fatalf("plan = %s", s)
	}
	if !info.Bounded(store, store.Degree("")) {
		t.Fatal("Q1 must be bounded at the store's own max degree")
	}

	got, stats, err := Answer(info, store)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ra.Evaluate(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("plan answer differs from reference:\n%v\n%v", got.Rows, want.Rows)
	}
	if stats.Gets == 0 || stats.ScanBlocks != 0 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestPlanNonScanFreeFallsBackToScan(t *testing.T) {
	db, store, c := fixture(t, 2)
	q := ra.MustParse("select SUM(PS.supplycost), COUNT(*) from PARTSUPP PS", db)
	info, err := c.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	if info.ScanFree || len(info.Scans) != 1 {
		t.Fatalf("expected one scan: %+v", info)
	}
	got, _, err := Answer(info, store)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := ra.Evaluate(q, db)
	if !got.Equal(want) {
		t.Fatalf("answer differs: %v vs %v", got.Rows, want.Rows)
	}
}

func TestPlanUnsatisfiable(t *testing.T) {
	db, store, c := fixture(t, 3)
	q := ra.MustParse("select S.suppkey from SUPPLIER S where S.nationkey = 1 and S.nationkey = 2", db)
	info, err := c.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Empty {
		t.Fatal("conflicting constants must produce the empty plan")
	}
	got, _, err := Answer(info, store)
	if err != nil || len(got.Rows) != 0 {
		t.Fatalf("empty answer expected: %v %v", got, err)
	}
	// Empty IN intersection too.
	q2 := ra.MustParse("select S.suppkey from SUPPLIER S where S.nationkey = 1 and S.nationkey in (2, 3)", db)
	info2, err := c.Plan(q2)
	if err != nil || !info2.Empty {
		t.Fatalf("empty IN intersection: %+v %v", info2, err)
	}
}

func TestPlanNotAnswerable(t *testing.T) {
	db, _, _ := fixture(t, 4)
	// Schema covering only part of PARTSUPP cannot answer availqty queries.
	schema := baav.MustSchema(baav.RelSchemas(db),
		baav.KVSchema{Name: "PS_prime", Rel: "PARTSUPP", Key: []string{"suppkey"}, Val: []string{"partkey", "supplycost"}})
	c := NewChecker(schema, baav.RelSchemas(db))
	q := ra.MustParse("select PS.availqty from PARTSUPP PS where PS.suppkey = 3", db)
	_, err := c.Plan(q)
	if !errors.Is(err, ErrNotAnswerable) {
		t.Fatalf("err = %v, want ErrNotAnswerable", err)
	}
}

func TestPlanWithOrderLimitDistinctFilters(t *testing.T) {
	db, store, c := fixture(t, 5)
	for _, src := range []string{
		"select distinct PS.partkey from PARTSUPP PS where PS.suppkey = 3 order by PS.partkey desc limit 2",
		"select PS.partkey, PS.availqty from PARTSUPP PS where PS.suppkey = 3 and PS.availqty > 4",
		"select PS.partkey from PARTSUPP PS where PS.suppkey in (1, 3, 5) and PS.supplycost < PS.availqty",
	} {
		q := ra.MustParse(src, db)
		info, err := c.Plan(q)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if !info.ScanFree {
			t.Fatalf("%s should be scan-free", src)
		}
		got, _, err := Answer(info, store)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := ra.Evaluate(q, db)
		if !got.Equal(want) {
			t.Fatalf("%s:\n got %v\nwant %v", src, got.Rows, want.Rows)
		}
	}
}

func TestPlanMixedScanAndExtend(t *testing.T) {
	db, store, c := fixture(t, 6)
	// The aggregate over all suppliers joined to nations is not scan-free,
	// but the nation side can still be reached; the plan mixes a scan with
	// hash joins and answers correctly.
	q := ra.MustParse(`select N.name, COUNT(*) from SUPPLIER S, NATION N
		where S.nationkey = N.nationkey group by N.name`, db)
	info, err := c.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	if info.ScanFree {
		t.Fatal("query without constants cannot be scan-free")
	}
	got, _, err := Answer(info, store)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := ra.Evaluate(q, db)
	if !got.Equal(want) {
		t.Fatalf("got %v want %v", got.Rows, want.Rows)
	}
}

func TestPlanDisconnectedCrossProduct(t *testing.T) {
	db, store, c := fixture(t, 7)
	q := ra.MustParse(`select N.nationkey, PS.partkey from NATION N, PARTSUPP PS
		where N.name = 'PERU' and PS.suppkey = 2`, db)
	info, err := c.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Answer(info, store)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := ra.Evaluate(q, db)
	if !got.Equal(want) {
		t.Fatalf("got %v want %v", got.Rows, want.Rows)
	}
}

// TestPlanDifferential compares generated plans against the reference
// evaluator across a battery of queries covering joins, constants, INs,
// filters, aggregates, DISTINCT and self-joins.
func TestPlanDifferential(t *testing.T) {
	db, store, c := fixture(t, 8)
	queries := []string{
		paperQ1,
		"select N.name from NATION N where N.nationkey = 3",
		"select S.suppkey from SUPPLIER S, NATION N where S.nationkey = N.nationkey and N.name = 'FRANCE'",
		"select PS.partkey, PS.supplycost from PARTSUPP PS where PS.suppkey = 11",
		"select PS.partkey from PARTSUPP PS where PS.suppkey in (2, 4, 6) and PS.supplycost >= 10",
		"select SUM(PS.availqty) from PARTSUPP PS",
		"select S.nationkey, COUNT(*) from SUPPLIER S group by S.nationkey",
		"select N.name, SUM(PS.supplycost) from PARTSUPP PS, SUPPLIER S, NATION N " +
			"where PS.suppkey = S.suppkey and S.nationkey = N.nationkey group by N.name",
		"select distinct PS.suppkey from PARTSUPP PS where PS.partkey = 7",
		"select A.partkey from PARTSUPP A, PARTSUPP B where A.partkey = B.partkey and A.suppkey = 3 and B.suppkey = 5",
		"select MIN(PS.supplycost), MAX(PS.supplycost), AVG(PS.supplycost) from PARTSUPP PS where PS.suppkey = 9",
		"select S.suppkey, N.name from SUPPLIER S, NATION N where S.nationkey = N.nationkey and S.suppkey between 3 and 8 order by S.suppkey limit 4",
	}
	for _, src := range queries {
		q := ra.MustParse(src, db)
		info, err := c.Plan(q)
		if err != nil {
			t.Fatalf("plan %q: %v", src, err)
		}
		got, _, err := Answer(info, store)
		if err != nil {
			t.Fatalf("answer %q: %v", src, err)
		}
		want, err := ra.Evaluate(q, db)
		if err != nil {
			t.Fatalf("reference %q: %v", src, err)
		}
		if !got.Equal(want) {
			t.Fatalf("differential mismatch for %q:\n got %v\nwant %v\nplan %s",
				src, got.Rows, want.Rows, info.Root)
		}
	}
}

// TestPlanScanFreeAccessIsProportional verifies the headline property: the
// data accessed by a scan-free plan does not grow with the database.
func TestPlanScanFreeAccessIsProportional(t *testing.T) {
	run := func(extra int) int64 {
		db, _, _ := fixture(t, 9)
		ps := db.Relation("PARTSUPP")
		r := rand.New(rand.NewSource(99))
		for i := 0; i < extra; i++ {
			// Grow the relation with suppliers != 3 only.
			ps.MustInsert(relation.Tuple{
				relation.Int(int64(r.Intn(30))), relation.Int(int64(40 + r.Intn(40))),
				relation.Int(int64(r.Intn(50))), relation.Int(int64(r.Intn(20))),
			})
		}
		schema := baav.MustSchema(baav.RelSchemas(db),
			baav.KVSchema{Name: "PARTSUPP_by_supp", Rel: "PARTSUPP", Key: []string{"suppkey"}, Val: []string{"partkey", "supplycost", "availqty"}})
		store, err := baav.Map(db, schema, kv.NewCluster(kv.EngineHash, 2), baav.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		c := NewChecker(schema, baav.RelSchemas(db))
		q := ra.MustParse("select PS.partkey from PARTSUPP PS where PS.suppkey = 3", db)
		info, err := c.Plan(q)
		if err != nil {
			t.Fatal(err)
		}
		_, stats, err := Answer(info, store)
		if err != nil {
			t.Fatal(err)
		}
		return stats.DataValues
	}
	small := run(0)
	big := run(5000)
	if big != small {
		t.Fatalf("scan-free access grew with |D|: %d -> %d", small, big)
	}
}

func TestToResultErrors(t *testing.T) {
	db, _, c := fixture(t, 10)
	q := ra.MustParse("select N.name from NATION N where N.nationkey = 1", db)
	info, err := c.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	bad := &kba.KeyedRel{KeyAttrs: []string{"wrong"}}
	if _, err := info.ToResult(bad); err == nil {
		t.Fatal("missing output column must error")
	}
}

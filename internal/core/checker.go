// Package core implements Zidian's middleware logic — the paper's primary
// contribution: the closure clo(~R, ~𝐑) and data/result preservability
// characterizations (Conditions (I) and (II), Theorems 1–3), the GET/VC
// chase and the scan-free characterization (Condition (III), Theorems 4–5),
// the bounded-query check, and chase-based KBA plan generation (Section 6.2,
// Theorem 6).
package core

import (
	"sort"

	"zidian/internal/baav"
	"zidian/internal/ra"
	"zidian/internal/relation"
)

// PlanStats supplies the cardinality statistics the planner uses for its
// scan-vs-probe cost decision, and advertises whether blocks carry
// statistics headers (enabling aggregate pushdown). *baav.Store implements
// it.
type PlanStats interface {
	// InstanceBlocks returns the number of keyed blocks in a KV instance.
	InstanceBlocks(name string) int
	// RelationRows returns the tuple count of a base relation.
	RelationRows(rel string) int
	// HasBlockStats reports whether blocks carry min/max/sum statistics.
	HasBlockStats() bool
}

// IndexCatalog lists the secondary indexes available to the planner. It is
// implemented by internal/index.Manager. Unlike the BaaV schema, the
// catalog is mutable at runtime (CREATE INDEX / DROP INDEX), so the planner
// consults it on every Plan call; cached plans must be invalidated when it
// changes (the serving layer's schema epoch does this).
type IndexCatalog interface {
	// IndexOn returns, for an index on rel(attr), the index name and the
	// block-key attributes its postings hold (the relation's primary key).
	IndexOn(rel, attr string) (name string, key []string, ok bool)
	// AvgPostings estimates the posting-list length of one lookup — the
	// cost statistic for the index-vs-scan decision.
	AvgPostings(name string) int
	// Shape returns the index's distinct-entry and total-posting counts —
	// the statistics behind the range-vs-scan decision (range fraction ×
	// average posting).
	Shape(name string) (entries, postings int)
	// ValueBounds returns the smallest and largest value the index
	// currently holds (ok false when unknown or empty). The planner uses
	// them to replace the shape-only matched-fraction guess with an
	// interpolated estimate when a range's bounds are literals; the
	// statistic is maintained incrementally on insert and delete, so it
	// stays exact under churn.
	ValueBounds(name string) (lo, hi relation.Value, ok bool)
}

// Checker answers the fundamental questions of modules M1 and M2: whether a
// BaaV schema preserves a relational schema or a query, and whether a query
// is scan-free or bounded.
type Checker struct {
	Schema *baav.Schema
	Rels   map[string]*relation.Schema
	// Stats, when set, enables the planner's cost-based choice between
	// probing an instance with ∝ and scanning it (relevant only for plans
	// that already contain a scan; scan-free plans never probe from an
	// unbounded fragment).
	Stats PlanStats
	// Indexes, when set, enables the planner's third access path: secondary
	// index lookups for constant predicates on non-key attributes.
	Indexes IndexCatalog
}

// NewChecker builds a checker for the BaaV schema over the relational
// schemas.
func NewChecker(schema *baav.Schema, rels map[string]*relation.Schema) *Checker {
	return &Checker{Schema: schema, Rels: rels}
}

// WithStats attaches planner statistics (usually the BaaV store itself).
func (c *Checker) WithStats(stats PlanStats) *Checker {
	c.Stats = stats
	return c
}

// WithIndexes attaches the secondary-index catalog (usually the
// index.Manager of the opened instance).
func (c *Checker) WithIndexes(idx IndexCatalog) *Checker {
	c.Indexes = idx
	return c
}

// pkOf returns the primary key pk(~S) of a KV schema: the source relation's
// primary key when the schema contains all of its attributes, nil otherwise
// (a schema without the full primary key never carries one). A primary key
// inside clo certifies that the remaining attributes of the relation are
// functionally determined, so combinations reconstructed through it are
// verified (Section 5.2).
func (c *Checker) pkOf(s baav.KVSchema) []string {
	rel, ok := c.Rels[s.Rel]
	if !ok || len(rel.Key) == 0 {
		return nil
	}
	have := make(map[string]bool)
	for _, a := range s.Attrs() {
		have[a] = true
	}
	for _, k := range rel.Key {
		if !have[k] {
			return nil
		}
	}
	return rel.Key
}

// Clo computes clo(~S, ~𝐑) for the named anchor KV schema: the attribute
// closure within the anchor's relation, expanded through KV schemas whose
// primary key is already in the closure (Condition (I)'s inductive
// definition). The optional allowed filter restricts which schemas may
// participate (used by VC, which only admits GET-covered schemas).
func (c *Checker) Clo(anchor string, allowed func(baav.KVSchema) bool) map[string]bool {
	s := c.Schema.ByName(anchor)
	if s == nil {
		return nil
	}
	clo := make(map[string]bool)
	for _, a := range s.Attrs() {
		clo[a] = true
	}
	sameRel := c.Schema.ForRelation(s.Rel)
	for changed := true; changed; {
		changed = false
		for _, s2 := range sameRel {
			if allowed != nil && !allowed(s2) {
				continue
			}
			pk := c.pkOf(s2)
			if pk == nil {
				continue
			}
			inClo := true
			for _, a := range pk {
				if !clo[a] {
					inClo = false
					break
				}
			}
			if !inClo {
				continue
			}
			for _, a := range s2.Attrs() {
				if !clo[a] {
					clo[a] = true
					changed = true
				}
			}
		}
	}
	return clo
}

// DataPreserving checks Condition (I): for every relation there is a KV
// schema whose closure equals the relation's full attribute set (Theorem 1).
// It returns the names of relations that are not preserved.
func (c *Checker) DataPreserving() (bool, []string) {
	var missing []string
	for relName, rel := range c.Rels {
		ok := false
		for _, s := range c.Schema.ForRelation(relName) {
			clo := c.Clo(s.Name, nil)
			if len(clo) != len(rel.Attrs) {
				continue
			}
			all := true
			for _, a := range rel.Attrs {
				if !clo[a.Name] {
					all = false
					break
				}
			}
			if all {
				ok = true
				break
			}
		}
		if !ok {
			missing = append(missing, relName)
		}
	}
	sort.Strings(missing)
	return len(missing) == 0, missing
}

// ResultPreserving checks Condition (II) on min(Q): every atom of the
// minimal equivalent query has a KV schema whose closure covers the
// attributes the query uses from it (Theorem 2; Theorem 3 reduces RAaggr to
// its max SPC sub-queries, which in this fragment is the SPC core checked
// here).
func (c *Checker) ResultPreserving(q *ra.Query) bool {
	m := q.Minimize()
	for _, atom := range m.Atoms {
		used := m.AttrsUsed(atom.Alias)
		ok := false
		for _, s := range c.Schema.ForRelation(atom.Rel) {
			clo := c.Clo(s.Name, nil)
			covered := true
			for _, a := range used {
				if !clo[a] {
					covered = false
					break
				}
			}
			if covered {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// ScanFree checks Condition (III) on min(Q): every atom's used attributes
// X_R^min(Q) lie inside some verifiable combination W ∈ VC(min(Q), ~𝐑)
// (Theorem 4; the RAaggr effective syntax of Theorem 5 again reduces to the
// SPC core).
func (c *Checker) ScanFree(q *ra.Query) bool {
	m := q.Minimize()
	eq := ra.BuildEqClasses(m)
	if eq.Unsat {
		return true // trivially scan-free: the empty plan answers it
	}
	get := c.GetSet(m, eq)
	for _, atom := range m.Atoms {
		if !c.atomScanFree(m, eq, get, atom) {
			return false
		}
	}
	return true
}

// atomScanFree reports whether one atom's used attributes fit inside a
// verifiable combination: an anchor schema all of whose attributes are in
// GET, whose GET-restricted closure covers X_a.
func (c *Checker) atomScanFree(q *ra.Query, eq *ra.EqClasses, get map[ra.ColRef]bool, atom ra.Atom) bool {
	used := q.AttrsUsed(atom.Alias)
	inGet := func(s baav.KVSchema) bool {
		for _, a := range s.Attrs() {
			if !get[eq.Find(ra.ColRef{Alias: atom.Alias, Attr: a})] {
				return false
			}
		}
		return true
	}
	for _, s := range c.Schema.ForRelation(atom.Rel) {
		if !inGet(s) {
			continue
		}
		clo := c.Clo(s.Name, inGet)
		covered := true
		for _, a := range used {
			if !clo[a] {
				covered = false
				break
			}
		}
		if covered {
			return true
		}
	}
	return false
}

// GetSet computes GET(Q, ~𝐑) as the set of equality-class roots whose
// values are retrievable with scan-free plans (Section 6.1): constant
// attributes seed the set (rule a; IN lists count as finite constant sets),
// equality transitivity is built into the class representation (rule b),
// and KV schemas propagate keys to values per atom (rule c).
func (c *Checker) GetSet(q *ra.Query, eq *ra.EqClasses) map[ra.ColRef]bool {
	get := make(map[ra.ColRef]bool)
	for _, ce := range eq.ConstCols() {
		get[eq.Find(ce.Col)] = true
	}
	for _, in := range q.Ins {
		get[eq.Find(in.Col)] = true
	}
	// Parameter-pinned classes are constants whose value arrives at bind
	// time: retrievability depends only on the pin, not the value, so the
	// template chases exactly like any literal instantiation.
	for _, pe := range q.EqParams {
		get[eq.Find(pe.Col)] = true
	}
	for changed := true; changed; {
		changed = false
		for _, atom := range q.Atoms {
			for _, s := range c.Schema.ForRelation(atom.Rel) {
				keyIn := true
				for _, k := range s.Key {
					if !get[eq.Find(ra.ColRef{Alias: atom.Alias, Attr: k})] {
						keyIn = false
						break
					}
				}
				if !keyIn {
					continue
				}
				for _, v := range s.Val {
					root := eq.Find(ra.ColRef{Alias: atom.Alias, Attr: v})
					if !get[root] {
						get[root] = true
						changed = true
					}
				}
			}
		}
	}
	return get
}

// Bounded reports whether the query is bounded over the store: scan-free,
// with every KV instance reachable by the chase having degree at most
// maxDeg (Section 6.1's corollary).
func (c *Checker) Bounded(q *ra.Query, store *baav.Store, maxDeg int) bool {
	if !c.ScanFree(q) {
		return false
	}
	m := q.Minimize()
	eq := ra.BuildEqClasses(m)
	if eq.Unsat {
		return true
	}
	get := c.GetSet(m, eq)
	for _, atom := range m.Atoms {
		for _, s := range c.Schema.ForRelation(atom.Rel) {
			// Only instances the chase can touch matter.
			keyIn := true
			for _, k := range s.Key {
				if !get[eq.Find(ra.ColRef{Alias: atom.Alias, Attr: k})] {
					keyIn = false
					break
				}
			}
			if keyIn && store.Degree(s.Name) > maxDeg {
				return false
			}
		}
	}
	return true
}

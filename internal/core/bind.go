package core

import (
	"zidian/internal/kba"
	"zidian/internal/ra"
	"zidian/internal/relation"
)

// Bind injects bound parameter values into a compiled plan template,
// returning an executable PlanInfo. It validates arity (exactly NumParams
// values) and per-slot types (numeric kinds coerce losslessly, anything
// else is a mismatch), then rewrites only the plan nodes that carry
// parameter slots — constant seeds, index lookups and residual selections —
// sharing every other node with the template. No parsing, checking or plan
// generation happens: this is the whole point of plan templates, the
// compile cost is paid once per template rather than once per literal.
//
// A literal-only plan (NumParams == 0) binds to itself with an empty
// parameter list, so callers can bind unconditionally. The receiver is
// never modified and stays valid for concurrent Binds.
func (p *PlanInfo) Bind(params []relation.Value) (*PlanInfo, error) {
	vals, err := ra.CheckParams(params, p.NumParams, p.ParamKinds)
	if err != nil {
		return nil, err
	}
	if p.NumParams == 0 {
		return p, nil
	}
	root, err := kba.Bind(p.Root, vals)
	if err != nil {
		return nil, err
	}
	out := *p
	out.Root = root
	// A LIMIT ? slot binds into the result shaping (ToResult reads
	// Query.Limit), not the plan tree: clone the query with the literal
	// limit so the shared template stays parameterized.
	if p.Query != nil && p.Query.LimitParam != nil {
		n, err := p.Query.LimitOf(vals)
		if err != nil {
			return nil, err
		}
		bq := *p.Query
		bq.Limit = n
		bq.LimitParam = nil
		out.Query = &bq
	}
	out.NumParams = 0
	out.ParamKinds = nil
	return &out, nil
}

package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"zidian/internal/baav"
	"zidian/internal/kba"
	"zidian/internal/ra"
	"zidian/internal/relation"
	"zidian/internal/sql"
)

// ErrNotAnswerable reports that the BaaV schema cannot answer the query
// (Condition (II) fails, or no single KV schema covers a fallback scan).
// Module M1 then routes the query to the underlying SQL-over-NoSQL system.
var ErrNotAnswerable = errors.New("core: query cannot be answered over the BaaV schema")

// PlanInfo is a generated KBA plan plus the metadata the executor and the
// experiment harness need.
type PlanInfo struct {
	Query *ra.Query
	// Root is the KBA plan; nil when Empty.
	Root kba.Plan
	// Empty marks statically unsatisfiable queries (conflicting constants).
	Empty bool
	// ScanFree reports whether Root scans no KV instance.
	ScanFree bool
	// Extends and Scans list the KV instances accessed by ∝ and by scans;
	// Indexes lists the secondary indexes accessed by IndexLookup leaves,
	// and Ranges those walked by IndexRange leaves (bounded ordered posting
	// scans serving range predicates).
	Extends []string
	Scans   []string
	Indexes []string
	Ranges  []string
	// Relations lists the base relations the query reads, sorted and
	// deduplicated. Every KV instance, index posting, and statistic the
	// plan touches belongs to one of them, so a serving layer that holds
	// these relations' read locks (and a writer that holds its target
	// relation's write lock) schedules statements without inspecting the
	// plan tree.
	Relations []string
	// OutCols names, per output column of the query, the plan column that
	// carries it (parallel to Query.OutNames).
	OutCols []string
	// UsedStats marks plans answered from per-block statistics headers
	// without decoding tuples (the Section 8.2 aggregate pushdown).
	UsedStats bool
	// NumParams counts the `?` placeholders of the source query. When
	// non-zero, Root is a plan template: compiled once, then executed many
	// times by calling Bind with a fresh parameter list — no re-parse,
	// re-check or re-plan per execution.
	NumParams int
	// ParamKinds records the expected relation.Kind per parameter slot
	// (from the column each placeholder compares with); Bind validates and
	// coerces supplied values against it.
	ParamKinds []relation.Kind
}

// Bounded reports whether the plan is bounded on the store: scan-free with
// every extended instance's degree at most maxDeg.
func (p *PlanInfo) Bounded(store *baav.Store, maxDeg int) bool {
	if p.Empty {
		return true
	}
	if !p.ScanFree {
		return false
	}
	for _, name := range p.Extends {
		if store.Degree(name) > maxDeg {
			return false
		}
	}
	// Index lookups fan out like blocks: a posting list longer than the
	// degree bound makes the query unbounded on this store.
	for _, name := range p.Indexes {
		if store.Index == nil || store.Index.MaxPostings(name) > maxDeg {
			return false
		}
	}
	return true
}

// frag is a partial plan during generation: the plan so far, its attribute
// layout, and the column materializing each equality class.
type frag struct {
	plan  kba.Plan
	attrs []string
	cols  map[ra.ColRef]string // class root -> column name
	// scanBased marks fragments containing a KV-instance scan; probing
	// another instance from such a fragment costs one get per distinct
	// key, which the planner trades off against scanning it.
	scanBased bool
	// rowEst is a rough upper bound on the fragment's row count, used for
	// the scan-vs-probe decision. Zero means unknown/small.
	rowEst int
}

func (f *frag) has(name string) bool {
	for _, a := range f.attrs {
		if a == name {
			return true
		}
	}
	return false
}

// Plan generates a KBA plan for the query over the checker's BaaV schema,
// following the chase-based algorithm of Section 6.2: constant seeds grow
// into chains of ∝ steps (scan-free atoms), uncovered atoms fall back to
// KV-instance scans, fragments join on shared equality classes, and residual
// predicates, projection and aggregation finish the plan.
func (c *Checker) Plan(q *ra.Query) (*PlanInfo, error) {
	info, err := c.plan(q)
	if info != nil {
		info.Relations = queryRelations(q)
	}
	return info, err
}

// queryRelations lists the base relations a query's atoms reference, sorted
// and deduplicated — the lock set a serving layer schedules the plan with.
func queryRelations(q *ra.Query) []string {
	seen := make(map[string]bool, len(q.Atoms))
	var out []string
	for _, atom := range q.Atoms {
		if !seen[atom.Rel] {
			seen[atom.Rel] = true
			out = append(out, atom.Rel)
		}
	}
	sort.Strings(out)
	return out
}

func (c *Checker) plan(q *ra.Query) (*PlanInfo, error) {
	eq := ra.BuildEqClasses(q)
	if eq.Unsat {
		return &PlanInfo{Query: q, Empty: true, ScanFree: true,
			NumParams: q.NumParams, ParamKinds: q.ParamKinds}, nil
	}
	p := &planner{
		c: c, q: q, eq: eq,
		sfAtom:   make(map[string]bool),
		atomFrag: make(map[string]*frag),
		applied:  make(map[string]bool),
		indexed:  make(map[string]bool),
	}
	get := c.GetSet(q, eq)
	for _, atom := range q.Atoms {
		p.sfAtom[atom.Alias] = c.atomScanFree(q, eq, get, atom)
	}
	return p.run()
}

type planner struct {
	c  *Checker
	q  *ra.Query
	eq *ra.EqClasses

	frags   []*frag
	extends []string
	scans   []string
	indexes []string
	ranges  []string

	// sfAtom marks atoms that the GET/VC chase proves reachable scan-free;
	// only those may be assembled from several partial ∝ steps.
	sfAtom map[string]bool
	// atomFrag tracks which fragment an atom has been fetched into.
	atomFrag map[string]*frag
	// applied guards against re-applying the same (atom, schema) extend.
	applied map[string]bool
	// indexed marks atoms already seeded by an IndexLookup, so the access
	// path is tried at most once per atom.
	indexed map[string]bool

	// rangeNode is the IndexRange leaf applyRange seeded (at most one per
	// plan: only single-atom plans push limits), with the alias/attribute
	// it ranges over; rangeExact reports that the walk's fences enforce
	// exactly the query's recognized range conjuncts, so the residual
	// selection cannot drop a walked posting. The LIMIT pushdown needs all
	// three.
	rangeNode  *kba.IndexRange
	rangeAlias string
	rangeAttr  string
	rangeExact bool
}

// recordRange captures the IndexRange leaf for the LIMIT pushdown and
// decides exactness: the walk is exact when no written fence was dropped by
// kind alignment (a dropped fence widens the walk and leaves the residual
// selection doing real filtering) and no side mixes a parameter slot into
// multiple conjuncts. Literal-only sides always tighten to the strictest
// bound, so every conjunct is implied by the walk; but the merge cannot
// compare a slot, so with more than one conjunct on a slot-carrying side an
// unenforced — possibly stricter — bound stays residual, and stopping the
// walk at the limit could discard rows the stricter bound admits later.
func (p *planner) recordRange(node *kba.IndexRange, alias, attr string, rawLo, rawHi, lo, hi *rangeBound) {
	exact := !(rawLo != nil && lo == nil) && !(rawHi != nil && hi == nil)
	if exact {
		nLo, nHi := 0, 0
		slotLo, slotHi := false, false
		for i := range p.q.Filters {
			f := &p.q.Filters[i]
			if f.Col.Alias != alias || f.Col.Attr != attr || f.RCol != nil {
				continue
			}
			if f.Param == nil && f.Lit == nil {
				continue
			}
			switch f.Op {
			case sql.OpGt, sql.OpGe:
				nLo++
				slotLo = slotLo || f.Param != nil
			case sql.OpLt, sql.OpLe:
				nHi++
				slotHi = slotHi || f.Param != nil
			}
		}
		exact = !(slotLo && nLo > 1) && !(slotHi && nHi > 1)
	}
	p.rangeNode, p.rangeAlias, p.rangeAttr, p.rangeExact = node, alias, attr, exact
}

// pushRangeLimit pushes the query's LIMIT into the IndexRange leaf when
// every walked posting is guaranteed to reach the output row-for-row: a
// single-atom plan whose only access is the range walk plus its pk-keyed ∝
// (each posting fetches exactly its own block), no aggregation, DISTINCT,
// or ORDER BY to reshape the row set, and no predicate beyond the range
// conjuncts the walk's fences already enforce. The walk then stops O(k)
// posting lists in instead of merging the whole range; ToResult's trim
// stays as the final authority on the row count.
func (p *planner) pushRangeLimit() {
	q := p.q
	if p.rangeNode == nil || !p.rangeExact {
		return
	}
	if q.Limit < 0 && q.LimitParam == nil {
		return
	}
	if len(q.Atoms) != 1 || q.IsAggregate() || q.Distinct || len(q.OrderBy) > 0 {
		return
	}
	if len(p.scans) > 0 || len(p.indexes) > 0 || len(p.extends) != 1 {
		return
	}
	if len(q.EqConsts)+len(q.EqParams)+len(q.Ins)+len(q.EqAttrs) > 0 {
		return
	}
	for i := range q.Filters {
		f := &q.Filters[i]
		if f.Col.Alias != p.rangeAlias || f.Col.Attr != p.rangeAttr || f.RCol != nil {
			return
		}
		switch f.Op {
		case sql.OpGt, sql.OpGe, sql.OpLt, sql.OpLe:
		default:
			return
		}
	}
	var a kba.Arg
	if q.LimitParam != nil {
		a = kba.SlotArg(*q.LimitParam)
	} else {
		a = kba.LitArg(relation.Int(int64(q.Limit)))
	}
	p.rangeNode.Limit = &a
}

func (p *planner) run() (*PlanInfo, error) {
	if info, ok := p.tryStatsAgg(); ok {
		return info, nil
	}
	if seed, err := p.buildSeed(); err != nil {
		return nil, err
	} else if seed != nil {
		p.frags = append(p.frags, seed)
	} else if p.seedEmpty() {
		return &PlanInfo{Query: p.q, Empty: true, ScanFree: true,
			NumParams: p.q.NumParams, ParamKinds: p.q.ParamKinds}, nil
	}

	if err := p.coverAtoms(); err != nil {
		return nil, err
	}
	f, err := p.mergeFrags()
	if err != nil {
		return nil, err
	}
	if err := p.residualSelect(f); err != nil {
		return nil, err
	}
	outCols, err := p.tail(f)
	if err != nil {
		return nil, err
	}
	p.pushRangeLimit()
	info := &PlanInfo{
		Query:      p.q,
		Root:       f.plan,
		ScanFree:   kba.IsScanFree(f.plan),
		Extends:    p.extends,
		Scans:      p.scans,
		Indexes:    p.indexes,
		Ranges:     p.ranges,
		OutCols:    outCols,
		NumParams:  p.q.NumParams,
		ParamKinds: p.q.ParamKinds,
	}
	return info, nil
}

// tryStatsAgg recognizes whole-instance group-by aggregates that per-block
// statistics can answer without decoding any tuple (Section 8.2): a single
// atom, no predicates, group keys exactly a KV schema's key attributes, and
// COUNT/SUM/MIN/MAX/AVG over its numeric value attributes.
func (p *planner) tryStatsAgg() (*PlanInfo, bool) {
	q := p.q
	if p.c.Stats == nil || !p.c.Stats.HasBlockStats() {
		return nil, false
	}
	if len(q.Atoms) != 1 || !q.IsAggregate() || len(q.Proj) == 0 {
		return nil, false
	}
	if len(q.EqAttrs)+len(q.EqConsts)+len(q.EqParams)+len(q.Ins)+len(q.Filters) > 0 {
		return nil, false
	}
	atom := q.Atoms[0]
	rel := p.c.Rels[atom.Rel]
	for _, s := range p.c.Schema.ForRelation(atom.Rel) {
		// Group keys must be exactly the schema's key attributes.
		if len(q.Proj) != len(s.Key) {
			continue
		}
		keySet := make(map[string]bool, len(s.Key))
		for _, k := range s.Key {
			keySet[k] = true
		}
		match := true
		for _, ref := range q.Proj {
			if !keySet[ref.Attr] {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		valSet := make(map[string]bool, len(s.Val))
		for _, v := range s.Val {
			valSet[v] = true
		}
		specs := make([]kba.AggSpec, len(q.Aggs))
		ok := true
		for i, a := range q.Aggs {
			specs[i] = kba.AggSpec{Func: a.Func, Star: a.Star, Name: a.Name}
			if a.Star {
				continue
			}
			kind := relation.KindNull
			if j := rel.Index(a.Col.Attr); j >= 0 {
				kind = rel.Attrs[j].Kind
			}
			if !valSet[a.Col.Attr] || (kind != relation.KindInt && kind != relation.KindFloat) {
				ok = false
				break
			}
			specs[i].Attr = atom.Alias + "." + a.Col.Attr
		}
		if !ok {
			continue
		}
		outCols := make([]string, 0, len(q.Proj)+len(q.Aggs))
		for _, ref := range q.Proj {
			outCols = append(outCols, ref.String())
		}
		for _, a := range q.Aggs {
			outCols = append(outCols, a.Name)
		}
		return &PlanInfo{
			Query:     q,
			Root:      &kba.StatsAgg{KV: s.Name, Alias: atom.Alias, Aggs: specs},
			ScanFree:  false, // header scans are still scans
			Scans:     []string{s.Name},
			OutCols:   outCols,
			UsedStats: true,
		}, true
	}
	return nil, false
}

// seedValues collects, per pinned equality class, the candidate bind-time
// args: literal constants (intersected with literal-only IN lists, as
// before) and parameter slots whose values arrive at Bind time. The
// template's shape — how many candidates pin each class — is all the
// planner needs for its access-path decisions; the concrete values are
// irrelevant until execution. The bool result is false when some class has
// a statically empty candidate set (unsatisfiable); classes pinned only
// through parameters are never statically empty. IN lists containing
// parameter slots cannot be intersected at plan time, so they seed only
// classes nothing else pins and are re-checked by the residual select.
func (p *planner) seedValues() (map[ra.ColRef][]kba.Arg, bool) {
	lits := make(map[ra.ColRef][]relation.Value)
	for _, ce := range p.eq.ConstCols() {
		root := p.eq.Find(ce.Col)
		if _, ok := lits[root]; !ok {
			lits[root] = []relation.Value{ce.Val}
		}
	}
	for _, in := range p.q.Ins {
		if len(in.Slots) > 0 {
			continue
		}
		root := p.eq.Find(in.Col)
		if prev, ok := lits[root]; ok {
			var kept []relation.Value
			for _, v := range prev {
				for _, w := range in.Vals {
					if relation.Equal(v, w) {
						kept = append(kept, v)
						break
					}
				}
			}
			lits[root] = kept
		} else {
			lits[root] = dedupeVals(in.Vals)
		}
	}
	for _, vs := range lits {
		if len(vs) == 0 {
			return nil, false
		}
	}
	vals := make(map[ra.ColRef][]kba.Arg, len(lits))
	for root, vs := range lits {
		args := make([]kba.Arg, len(vs))
		for i, v := range vs {
			args[i] = kba.LitArg(v)
		}
		vals[root] = args
	}
	// Parameter pins seed classes not already pinned by literals; when a
	// class has both, the literal seeds and the residual select enforces the
	// parameter equality at execution time.
	for _, pe := range p.q.EqParams {
		root := p.eq.Find(pe.Col)
		if _, ok := vals[root]; !ok {
			vals[root] = []kba.Arg{kba.SlotArg(pe.Slot)}
		}
	}
	for _, in := range p.q.Ins {
		if len(in.Slots) == 0 {
			continue
		}
		root := p.eq.Find(in.Col)
		if _, ok := vals[root]; ok {
			continue
		}
		var args []kba.Arg
		for _, v := range dedupeVals(in.Vals) {
			args = append(args, kba.LitArg(v))
		}
		for _, slot := range in.Slots {
			args = append(args, kba.SlotArg(slot))
		}
		vals[root] = args
	}
	return vals, true
}

// dedupeVals removes duplicate values, preserving first-seen order: an IN
// list with repeated elements must seed each candidate once.
func dedupeVals(vs []relation.Value) []relation.Value {
	seen := make(map[string]bool, len(vs))
	out := make([]relation.Value, 0, len(vs))
	for _, v := range vs {
		k := relation.KeyString(relation.Tuple{v})
		if !seen[k] {
			seen[k] = true
			out = append(out, v)
		}
	}
	return out
}

func (p *planner) seedEmpty() bool {
	_, ok := p.seedValues()
	return !ok
}

// buildSeed materializes all pinned classes as one Const fragment, taking
// the cross product of the per-class candidate args. Seed columns use
// synthetic "$const." names so they never collide with fetched "alias.attr"
// columns. A seed with only literal args materializes its key tuples at
// plan time, exactly as before; a seed touched by a parameter slot becomes
// a template leaf (Const.Args) whose keys Bind materializes per execution —
// the cross-product structure, and hence the plan shape, is fixed at plan
// time either way.
func (p *planner) buildSeed() (*frag, error) {
	vals, ok := p.seedValues()
	if !ok {
		return nil, nil
	}
	if len(vals) == 0 {
		return nil, nil
	}
	roots := make([]ra.ColRef, 0, len(vals))
	for r := range vals {
		roots = append(roots, r)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].String() < roots[j].String() })

	f := &frag{cols: make(map[ra.ColRef]string)}
	rows := [][]kba.Arg{{}}
	hasSlot := false
	for _, r := range roots {
		name := "$const." + r.String()
		f.attrs = append(f.attrs, name)
		f.cols[r] = name
		var next [][]kba.Arg
		for _, base := range rows {
			for _, a := range vals[r] {
				if a.IsSlot {
					hasSlot = true
				}
				row := make([]kba.Arg, len(base)+1)
				copy(row, base)
				row[len(base)] = a
				next = append(next, row)
			}
		}
		rows = next
		if len(rows) > 10000 {
			return nil, fmt.Errorf("core: constant seed cross product too large")
		}
	}
	c := &kba.Const{KeyAttrs: append([]string{}, f.attrs...)}
	if hasSlot {
		c.Args = rows
	} else {
		keys := make([]relation.Tuple, len(rows))
		for i, row := range rows {
			t := make(relation.Tuple, len(row))
			for j, a := range row {
				t[j] = a.Lit
			}
			keys[i] = t
		}
		c.Keys = keys
	}
	f.plan = c
	return f, nil
}

// coverAtoms covers every atom, preferring scan-free anchor extends and
// falling back to instance scans. An atom is covered once it has been
// fetched at least once and all its used attributes are materialized.
func (p *planner) coverAtoms() error {
	covered := func(alias string) bool {
		f := p.atomFrag[alias]
		if f == nil {
			return false
		}
		for _, attr := range p.q.AttrsUsed(alias) {
			ref := ra.ColRef{Alias: alias, Attr: attr}
			if !f.has(ref.String()) {
				if _, ok := f.cols[p.eq.Find(ref)]; !ok {
					return false
				}
			}
		}
		return true
	}
	allCovered := func() bool {
		for _, atom := range p.q.Atoms {
			if !covered(atom.Alias) {
				return false
			}
		}
		return true
	}
	for !allCovered() {
		// Full-cover anchors first (the single-step chase of Example 7),
		// then partial pk-refining anchors, then merges, then index
		// lookups, then scans.
		if p.applyAnchor(covered, true) || p.applyAnchor(covered, false) {
			continue
		}
		if p.mergeOnce(true) {
			continue
		}
		if p.applyIndex(covered) {
			continue
		}
		if p.applyRange(covered) {
			continue
		}
		if err := p.applyScan(covered); err != nil {
			return err
		}
	}
	return nil
}

// applyIndex is the third access path: when a not-yet-fetched atom has a
// constant-pinned non-key attribute covered by a secondary index, seed a
// fragment with an IndexLookup of the constant's postings — the block keys
// of the matching tuples — so the ordinary anchor step then fetches exactly
// those blocks through the primary-key KV schema instead of scanning the
// instance. The index is taken only when a full-covering pk-keyed schema
// exists for the subsequent ∝ and the posting estimate beats the scan under
// the same 4× get-vs-scan-step ratio extendBeatsScan uses.
func (p *planner) applyIndex(covered func(string) bool) bool {
	if p.c.Indexes == nil {
		return false
	}
	vals, ok := p.seedValues()
	if !ok || len(vals) == 0 {
		return false
	}
	for _, atom := range p.q.Atoms {
		if covered(atom.Alias) || p.atomFrag[atom.Alias] != nil || p.indexed[atom.Alias] {
			continue
		}
		used := p.q.AttrsUsed(atom.Alias)
		for _, attr := range used {
			root := p.eq.Find(ra.ColRef{Alias: atom.Alias, Attr: attr})
			vs := vals[root]
			if len(vs) == 0 {
				continue
			}
			name, key, ok := p.c.Indexes.IndexOn(atom.Rel, attr)
			if !ok {
				continue
			}
			// The lookup only pays off if a KV schema keyed exactly by the
			// posted block keys covers the atom, so one ∝ completes it.
			if !p.hasIndexAnchor(atom, key, used) {
				continue
			}
			if !p.indexBeatsScan(atom, used, name, len(vs)) {
				continue
			}
			valCol := "$idx." + atom.Alias + "." + attr
			keyCols := make([]string, len(key))
			for i, k := range key {
				keyCols[i] = atom.Alias + "." + k
			}
			lookup := &kba.IndexLookup{
				Index: name, Alias: atom.Alias,
				ValAttr: valCol, KeyAttrs: keyCols,
			}
			// A lookup over parameter slots stays a template leaf; Bind
			// resolves the probe values per execution.
			template := false
			for _, a := range vs {
				if a.IsSlot {
					template = true
					break
				}
			}
			if template {
				lookup.Args = append([]kba.Arg{}, vs...)
			} else {
				for _, a := range vs {
					lookup.Values = append(lookup.Values, a.Lit)
				}
			}
			f := &frag{
				plan:  lookup,
				attrs: append([]string{valCol}, keyCols...),
				cols:  make(map[ra.ColRef]string),
			}
			f.cols[root] = valCol
			for i, k := range key {
				kroot := p.eq.Find(ra.ColRef{Alias: atom.Alias, Attr: k})
				if _, ok := f.cols[kroot]; !ok {
					f.cols[kroot] = keyCols[i]
				}
			}
			f.rowEst = len(vs) * p.c.Indexes.AvgPostings(name)
			p.frags = append(p.frags, f)
			p.indexes = append(p.indexes, name)
			p.indexed[atom.Alias] = true
			return true
		}
	}
	return false
}

// hasIndexAnchor reports whether a KV schema of the atom's relation is
// keyed exactly by the posted block-key attributes and covers the atom's
// used attributes — the ∝ target that turns index postings into the atom's
// tuples.
func (p *planner) hasIndexAnchor(atom ra.Atom, key []string, used []string) bool {
	keySet := make(map[string]bool, len(key))
	for _, k := range key {
		keySet[k] = true
	}
	for _, s := range p.c.Schema.ForRelation(atom.Rel) {
		if len(s.Key) != len(keySet) {
			continue
		}
		exact := true
		for _, k := range s.Key {
			if !keySet[k] {
				exact = false
				break
			}
		}
		if exact && attrsCover(s.Attrs(), used) {
			return true
		}
	}
	return false
}

// smallestCoveringBlocks returns the block count of the smallest KV
// instance covering the atom's used attributes — the cheapest scan the
// index and range paths must beat. Zero means no covering instance (or no
// statistics for it).
func (p *planner) smallestCoveringBlocks(atom ra.Atom, used []string) int {
	blocks := 0
	for _, s := range p.c.Schema.ForRelation(atom.Rel) {
		if !attrsCover(s.Attrs(), used) {
			continue
		}
		if b := p.c.Stats.InstanceBlocks(s.Name); blocks == 0 || b < blocks {
			blocks = b
		}
	}
	return blocks
}

// indexBeatsScan compares the index path (one posting get per constant plus
// one block get per posted key) against scanning the smallest covering
// instance, with the same 4× ratio as extendBeatsScan. Without statistics
// the bounded lookup wins, matching the chase's default preference for gets.
func (p *planner) indexBeatsScan(atom ra.Atom, used []string, name string, nVals int) bool {
	if p.c.Stats == nil {
		return true
	}
	blocks := p.smallestCoveringBlocks(atom, used)
	if blocks <= 0 {
		return true // nothing to scan: the index is the only access path
	}
	probes := nVals * (1 + p.c.Indexes.AvgPostings(name))
	return blocks > 4*probes
}

// rangeBound is one side of a recognized range predicate, as a bind-time
// Arg: a literal bound known at plan time, or a parameter slot resolved at
// Bind time (so `attr BETWEEN ? AND ?` and `attr > ?` share one template).
type rangeBound struct {
	arg  kba.Arg
	incl bool
}

// tightenLo keeps the stricter of two lower bounds when both are literals;
// with a parameter slot on either side the first recognized bound wins and
// the residual selection enforces the rest.
func tightenLo(prev, next *rangeBound) *rangeBound {
	if prev == nil {
		return next
	}
	if !prev.arg.IsSlot && !next.arg.IsSlot {
		c := relation.Compare(next.arg.Lit, prev.arg.Lit)
		if c > 0 || (c == 0 && !next.incl) {
			return next
		}
	}
	return prev
}

// tightenHi is tightenLo for upper bounds.
func tightenHi(prev, next *rangeBound) *rangeBound {
	if prev == nil {
		return next
	}
	if !prev.arg.IsSlot && !next.arg.IsSlot {
		c := relation.Compare(next.arg.Lit, prev.arg.Lit)
		if c < 0 || (c == 0 && !next.incl) {
			return next
		}
	}
	return prev
}

// rangeConjuncts collects the query's one-sided range filters on the atom
// attribute — col > v, col >= v, col < v, col <= v with a literal or `?`
// RHS (BETWEEN desugars into the >=/<= pair at parse time) — merged into at
// most one lower and one upper bound.
func (p *planner) rangeConjuncts(alias, attr string) (lo, hi *rangeBound) {
	for i := range p.q.Filters {
		f := &p.q.Filters[i]
		if f.Col.Alias != alias || f.Col.Attr != attr || f.RCol != nil {
			continue
		}
		var arg kba.Arg
		switch {
		case f.Param != nil:
			arg = kba.SlotArg(*f.Param)
		case f.Lit != nil:
			arg = kba.LitArg(*f.Lit)
		default:
			continue
		}
		switch f.Op {
		case sql.OpGt, sql.OpGe:
			lo = tightenLo(lo, &rangeBound{arg: arg, incl: f.Op == sql.OpGe})
		case sql.OpLt, sql.OpLe:
			hi = tightenHi(hi, &rangeBound{arg: arg, incl: f.Op == sql.OpLe})
		}
	}
	return lo, hi
}

// alignRangeBound aligns a literal fence with the indexed column's declared
// kind, so the encoded posting-key fence sorts among the stored postings
// the way Compare orders the values (the key codec partitions by kind tag;
// a float fence would sort past every int posting). After ra.Bind's
// lossless literal coercion the only remaining numeric mismatch is a
// non-integral float over an int column; its fence rounds inward to the
// nearest enclosed integer — exactly the integers the float bound admits —
// and the residual selection keeps enforcing the written bound. A fence
// beyond the int range is dropped (nil): the walk widens to unbounded on
// that side and the residual filter still applies. Non-numeric mixes
// encode consistently with Compare's kind ordering and pass through.
func alignRangeBound(b *rangeBound, kind relation.Kind, lower bool) *rangeBound {
	if b == nil || b.arg.IsSlot {
		return b // slots are coerced to the column kind by CheckParams at bind time
	}
	v := b.arg.Lit
	if kind != relation.KindInt || v.Kind != relation.KindFloat {
		return b
	}
	f := v.Flt
	if f < -(1<<62) || f > 1<<62 {
		return nil
	}
	fence := math.Ceil(f)
	if !lower {
		fence = math.Floor(f)
	}
	incl := true
	if fence == f {
		incl = b.incl
	}
	return &rangeBound{arg: kba.LitArg(relation.Int(int64(fence))), incl: incl}
}

// applyRange is the fourth access path: when a not-yet-fetched atom has a
// range predicate on an indexed non-key attribute, seed a fragment with an
// IndexRange — one bounded ordered walk over the value-ordered posting key
// space, yielding the block keys of exactly the matching tuples — so the
// anchor step then fetches those blocks through the primary-key KV schema
// instead of scanning the instance. Like applyIndex it requires a
// full-covering pk-keyed anchor schema and a favourable cost estimate; the
// range bounds may be literals or parameter slots, so a `BETWEEN ? AND ?`
// template fixes the access path once and binds per execution.
func (p *planner) applyRange(covered func(string) bool) bool {
	if p.c.Indexes == nil {
		return false
	}
	vals, ok := p.seedValues()
	if !ok {
		return false // statically empty seed; run() bails out earlier
	}
	for _, atom := range p.q.Atoms {
		if covered(atom.Alias) || p.atomFrag[atom.Alias] != nil || p.indexed[atom.Alias] {
			continue
		}
		used := p.q.AttrsUsed(atom.Alias)
		for _, attr := range used {
			root := p.eq.Find(ra.ColRef{Alias: atom.Alias, Attr: attr})
			if len(vals[root]) > 0 {
				continue // equality-pinned: the lookup path owns this attribute
			}
			lo, hi := p.rangeConjuncts(atom.Alias, attr)
			if lo == nil && hi == nil {
				continue
			}
			rawLo, rawHi := lo, hi
			kind := relation.KindNull
			if rel, ok := p.c.Rels[atom.Rel]; ok {
				if i := rel.Index(attr); i >= 0 {
					kind = rel.Attrs[i].Kind
				}
			}
			lo, hi = alignRangeBound(lo, kind, true), alignRangeBound(hi, kind, false)
			if lo == nil && hi == nil {
				continue
			}
			name, key, ok := p.c.Indexes.IndexOn(atom.Rel, attr)
			if !ok {
				continue
			}
			if !p.hasIndexAnchor(atom, key, used) {
				continue
			}
			if !p.rangeBeatsScan(atom, used, name, lo, hi) {
				continue
			}
			valCol := "$idx." + atom.Alias + "." + attr
			keyCols := make([]string, len(key))
			for i, k := range key {
				keyCols[i] = atom.Alias + "." + k
			}
			node := &kba.IndexRange{
				Index: name, Alias: atom.Alias,
				ValAttr: valCol, KeyAttrs: keyCols,
			}
			if lo != nil {
				a := lo.arg
				node.Lo, node.LoIncl = &a, lo.incl
			}
			if hi != nil {
				a := hi.arg
				node.Hi, node.HiIncl = &a, hi.incl
			}
			f := &frag{
				plan:  node,
				attrs: append([]string{valCol}, keyCols...),
				cols:  make(map[ra.ColRef]string),
			}
			f.cols[root] = valCol
			for i, k := range key {
				kroot := p.eq.Find(ra.ColRef{Alias: atom.Alias, Attr: k})
				if _, ok := f.cols[kroot]; !ok {
					f.cols[kroot] = keyCols[i]
				}
			}
			f.rowEst = p.rangeRowEst(name, lo, hi)
			p.frags = append(p.frags, f)
			p.ranges = append(p.ranges, name)
			p.indexed[atom.Alias] = true
			p.recordRange(node, atom.Alias, attr, rawLo, rawHi, lo, hi)
			return true
		}
	}
	return false
}

// Assumed matched fractions of the distinct-value space when the bounds'
// positions within the domain are unknown — the fallback for parameter
// slots (a `?` bound must plan identically to any literal: the template
// discipline), for non-numeric values, and for indexes without min/max
// statistics: a two-sided range is assumed to match 1/8 of the entries, a
// one-sided range 1/3.
const (
	rangeFracTwoSidedDiv = 8
	rangeFracOneSidedDiv = 3
)

// numericVal converts a value to its numeric magnitude for interpolation.
func numericVal(v relation.Value) (float64, bool) {
	switch v.Kind {
	case relation.KindInt:
		return float64(v.Int), true
	case relation.KindFloat:
		return v.Flt, true
	}
	return 0, false
}

// rangeFrac estimates the fraction of the index's distinct values a range
// matches. Literal numeric bounds interpolate against the index's
// maintained min/max — this is what lets a highly selective one-sided
// `attr > lit` beat the scan instead of being charged the 1/3 shape guess —
// while slot bounds, non-numeric values, and stat-less indexes keep the
// shape-only fractions. Zero means the window provably clears the domain.
func (p *planner) rangeFrac(name string, lo, hi *rangeBound) float64 {
	shape := 1.0 / float64(rangeFracOneSidedDiv)
	if lo != nil && hi != nil {
		shape = 1.0 / float64(rangeFracTwoSidedDiv)
	}
	if (lo != nil && lo.arg.IsSlot) || (hi != nil && hi.arg.IsSlot) {
		return shape
	}
	min, max, ok := p.c.Indexes.ValueBounds(name)
	if !ok {
		return shape
	}
	minF, okMin := numericVal(min)
	maxF, okMax := numericVal(max)
	if !okMin || !okMax {
		return shape
	}
	loF, hiF := minF, maxF
	if lo != nil {
		v, ok := numericVal(lo.arg.Lit)
		if !ok {
			return shape
		}
		loF = v
	}
	if hi != nil {
		v, ok := numericVal(hi.arg.Lit)
		if !ok {
			return shape
		}
		hiF = v
	}
	if hiF < loF || hiF < minF || loF > maxF {
		return 0
	}
	if loF < minF {
		loF = minF
	}
	if hiF > maxF {
		hiF = maxF
	}
	if maxF <= minF {
		return 1 // a single distinct value, inside the window
	}
	return (hiF - loF) / (maxF - minF)
}

// rangeMatched estimates how many posting lists a range matches.
func (p *planner) rangeMatched(name string, lo, hi *rangeBound) (matched, avg int) {
	entries, postings := p.c.Indexes.Shape(name)
	if entries <= 0 {
		return 0, 1
	}
	matched = int(math.Ceil(p.rangeFrac(name, lo, hi) * float64(entries)))
	if matched > entries {
		matched = entries
	}
	avg = postings / entries
	if avg < 1 {
		avg = 1
	}
	return matched, avg
}

// rangeRowEst bounds the fragment rows an IndexRange is expected to emit.
func (p *planner) rangeRowEst(name string, lo, hi *rangeBound) int {
	matched, avg := p.rangeMatched(name, lo, hi)
	return matched * avg
}

// rangeBeatsScan compares the range path — frac × entries posting-list
// steps on the ordered walk plus one block get per matched posting —
// against scanning the smallest covering instance, under the same 4×
// get-vs-scan-step ratio as extendBeatsScan and indexBeatsScan. Without
// statistics the bounded walk wins, matching the chase's preference for
// targeted access.
func (p *planner) rangeBeatsScan(atom ra.Atom, used []string, name string, lo, hi *rangeBound) bool {
	if p.c.Stats == nil {
		return true
	}
	blocks := p.smallestCoveringBlocks(atom, used)
	if blocks <= 0 {
		return true // nothing to scan: the range walk is the only access path
	}
	matched, avg := p.rangeMatched(name, lo, hi)
	if matched <= 0 {
		return true
	}
	probes := matched * (1 + avg)
	return blocks > 4*probes
}

// applyAnchor extends a fragment with one KV instance for an uncovered atom
// (a chase step, Example 7's T_i). With fullOnly, only schemas covering all
// of the atom's used attributes qualify; otherwise partial steps are allowed
// when sound: the first access to an atom joins along query equalities, and
// any further access must be keyed by a superset of the relation's primary
// key (so the fetched combination is the unique base tuple — the pk-based
// closure of Condition (III)).
func (p *planner) applyAnchor(covered func(string) bool, fullOnly bool) bool {
	for _, atom := range p.q.Atoms {
		if covered(atom.Alias) {
			continue
		}
		used := p.q.AttrsUsed(atom.Alias)
		for _, s := range p.c.Schema.ForRelation(atom.Rel) {
			full := attrsCover(s.Attrs(), used)
			if fullOnly && !full {
				continue
			}
			if !full {
				if !p.sfAtom[atom.Alias] {
					continue // partial assembly only when provably scan-free
				}
				// A partial step must carry the relation's primary key so its
				// rows are verified tuple projections: without it, derived
				// keys could inflate multiplicities or pair attributes from
				// different base tuples.
				if p.c.pkOf(s) == nil {
					continue
				}
			}
			if p.applied[atom.Alias+"|"+s.Name] {
				continue
			}
			f, keyFrom := p.findKeyFragment(atom.Alias, s.Key)
			if f == nil {
				continue
			}
			prev := p.atomFrag[atom.Alias]
			if prev != nil {
				if prev != f {
					continue // wait for a merge to unify fragments
				}
				// Refinement of an already fetched atom: sound only through
				// a primary-key superset.
				if !pkWithinKey(p.c.pkOf(s), s.Key) {
					continue
				}
			}
			if prev == nil && f.scanBased && !p.extendBeatsScan(f, s.Name) {
				continue
			}
			// Output names must be fresh in the fragment.
			collision := false
			for _, v := range s.Val {
				if f.has(atom.Alias + "." + v) {
					collision = true
					break
				}
			}
			if collision {
				continue
			}
			out := &kba.Extend{Input: f.plan, KV: s.Name, Alias: atom.Alias, KeyFrom: keyFrom}
			f.plan = out
			for _, v := range s.Val {
				ref := ra.ColRef{Alias: atom.Alias, Attr: v}
				name := ref.String()
				f.attrs = append(f.attrs, name)
				root := p.eq.Find(ref)
				if _, ok := f.cols[root]; !ok {
					f.cols[root] = name
				}
			}
			p.extends = append(p.extends, s.Name)
			p.applied[atom.Alias+"|"+s.Name] = true
			p.atomFrag[atom.Alias] = f
			return true
		}
	}
	return false
}

// pkWithinKey reports whether the relation's primary key is contained in
// the schema's key attributes (pk must be non-nil).
func pkWithinKey(pk, key []string) bool {
	if pk == nil {
		return false
	}
	set := make(map[string]bool, len(key))
	for _, k := range key {
		set[k] = true
	}
	for _, a := range pk {
		if !set[a] {
			return false
		}
	}
	return true
}

// findKeyFragment locates a fragment materializing all key classes of the
// schema at the atom, returning it with the column names in key order.
func (p *planner) findKeyFragment(alias string, key []string) (*frag, []string) {
	for _, f := range p.frags {
		cols := make([]string, 0, len(key))
		ok := true
		for _, k := range key {
			root := p.eq.Find(ra.ColRef{Alias: alias, Attr: k})
			col, found := f.cols[root]
			if !found {
				ok = false
				break
			}
			cols = append(cols, col)
		}
		if ok {
			return f, cols
		}
	}
	return nil, nil
}

// applyScan falls back to scanning a KV instance for the first uncovered,
// not-yet-fetched atom. The chosen schema must cover the atom's used
// attributes.
func (p *planner) applyScan(covered func(string) bool) error {
	for _, atom := range p.q.Atoms {
		if covered(atom.Alias) || p.atomFrag[atom.Alias] != nil {
			continue
		}
		used := p.q.AttrsUsed(atom.Alias)
		var best *baav.KVSchema
		for i, s := range p.c.Schema.ForRelation(atom.Rel) {
			if !attrsCover(s.Attrs(), used) {
				continue
			}
			if best == nil || len(s.Attrs()) < len(best.Attrs()) {
				cand := p.c.Schema.ForRelation(atom.Rel)[i]
				best = &cand
			}
		}
		if best == nil {
			return fmt.Errorf("%w: no KV schema covers attributes %v of %s (as %s)",
				ErrNotAnswerable, used, atom.Rel, atom.Alias)
		}
		f := &frag{
			plan:      &kba.ScanKV{KV: best.Name, Alias: atom.Alias},
			cols:      make(map[ra.ColRef]string),
			scanBased: true,
		}
		if p.c.Stats != nil {
			f.rowEst = p.c.Stats.RelationRows(atom.Rel)
		}
		for _, a := range best.Attrs() {
			ref := ra.ColRef{Alias: atom.Alias, Attr: a}
			name := ref.String()
			f.attrs = append(f.attrs, name)
			root := p.eq.Find(ref)
			if _, ok := f.cols[root]; !ok {
				f.cols[root] = name
			}
		}
		p.scans = append(p.scans, best.Name)
		p.frags = append(p.frags, f)
		p.atomFrag[atom.Alias] = f
		return nil
	}
	// Every remaining atom is partially fetched but stuck; as a last resort
	// this indicates a schema/planner mismatch.
	return fmt.Errorf("%w: no fetch path completes the remaining atoms", ErrNotAnswerable)
}

// mergeOnce joins the fragment pair sharing the most equality classes. With
// requireShared it refuses cross products. It reports whether a merge
// happened.
func (p *planner) mergeOnce(requireShared bool) bool {
	if len(p.frags) < 2 {
		return false
	}
	bi, bj, bestShared := -1, -1, []ra.ColRef(nil)
	for i := 0; i < len(p.frags); i++ {
		for j := i + 1; j < len(p.frags); j++ {
			var shared []ra.ColRef
			for r := range p.frags[i].cols {
				if _, ok := p.frags[j].cols[r]; ok {
					shared = append(shared, r)
				}
			}
			if bi < 0 || len(shared) > len(bestShared) {
				bi, bj, bestShared = i, j, shared
			}
		}
	}
	if requireShared && len(bestShared) == 0 {
		return false
	}
	l, r := p.frags[bi], p.frags[bj]
	sort.Slice(bestShared, func(i, j int) bool {
		return bestShared[i].String() < bestShared[j].String()
	})
	lOn := make([]string, len(bestShared))
	rOn := make([]string, len(bestShared))
	for i, root := range bestShared {
		lOn[i] = l.cols[root]
		rOn[i] = r.cols[root]
	}
	merged := &frag{
		plan:      &kba.Join{L: l.plan, R: r.plan, LOn: lOn, ROn: rOn},
		attrs:     append(append([]string{}, l.attrs...), r.attrs...),
		cols:      make(map[ra.ColRef]string, len(l.cols)+len(r.cols)),
		scanBased: l.scanBased || r.scanBased,
		rowEst:    maxInt(l.rowEst, r.rowEst),
	}
	for root, col := range l.cols {
		merged.cols[root] = col
	}
	for root, col := range r.cols {
		if _, ok := merged.cols[root]; !ok {
			merged.cols[root] = col
		}
	}
	var rest []*frag
	for i, f := range p.frags {
		if i != bi && i != bj {
			rest = append(rest, f)
		}
	}
	p.frags = append(rest, merged)
	for alias, f := range p.atomFrag {
		if f == l || f == r {
			p.atomFrag[alias] = merged
		}
	}
	return true
}

// mergeFrags joins all fragments into one, preferring joins on shared
// equality classes and resorting to cross products for disconnected parts.
func (p *planner) mergeFrags() (*frag, error) {
	if len(p.frags) == 0 {
		return nil, fmt.Errorf("core: query produced no plan fragments")
	}
	for len(p.frags) > 1 {
		p.mergeOnce(false)
	}
	return p.frags[0], nil
}

// residualSelect appends a Select verifying every predicate whose columns
// are materialized: constant selections on scanned atoms, filters, IN
// lists, and equality predicates both of whose sides were fetched
// independently. Predicates enforced structurally (by ∝ keys or join keys)
// have at most one side materialized and are skipped.
func (p *planner) residualSelect(f *frag) error {
	var preds []kba.Pred
	colFor := func(ref ra.ColRef) (string, bool) {
		if f.has(ref.String()) {
			return ref.String(), true
		}
		col, ok := f.cols[p.eq.Find(ref)]
		return col, ok
	}
	for _, ce := range p.q.EqConsts {
		col, ok := colFor(ce.Col)
		if !ok {
			return fmt.Errorf("core: predicate column %s not materialized", ce.Col)
		}
		v := ce.Val
		preds = append(preds, kba.Pred{Attr: col, Op: "=", Lit: &v})
	}
	// Parameter equalities are verified like constant ones; the slot is
	// resolved at bind time. Even when the parameter seeded the class, the
	// recheck is cheap and keeps the template uniform with the literal path.
	for _, pe := range p.q.EqParams {
		col, ok := colFor(pe.Col)
		if !ok {
			return fmt.Errorf("core: predicate column %s not materialized", pe.Col)
		}
		slot := pe.Slot
		preds = append(preds, kba.Pred{Attr: col, Op: "=", Param: &slot})
	}
	for _, in := range p.q.Ins {
		col, ok := colFor(in.Col)
		if !ok {
			return fmt.Errorf("core: predicate column %s not materialized", in.Col)
		}
		preds = append(preds, kba.Pred{Attr: col, In: in.Vals, InSlots: in.Slots})
	}
	for _, fl := range p.q.Filters {
		col, ok := colFor(fl.Col)
		if !ok {
			return fmt.Errorf("core: filter column %s not materialized", fl.Col)
		}
		pred := kba.Pred{Attr: col, Op: fl.Op}
		switch {
		case fl.RCol != nil:
			rcol, ok := colFor(*fl.RCol)
			if !ok {
				return fmt.Errorf("core: filter column %s not materialized", *fl.RCol)
			}
			pred.RAttr = rcol
		case fl.Param != nil:
			slot := *fl.Param
			pred.Param = &slot
		default:
			lit := *fl.Lit
			pred.Lit = &lit
		}
		preds = append(preds, pred)
	}
	for _, eqp := range p.q.EqAttrs {
		// Verify only when both sides are materialized as distinct columns.
		if f.has(eqp.L.String()) && f.has(eqp.R.String()) && eqp.L != eqp.R {
			preds = append(preds, kba.Pred{Attr: eqp.L.String(), Op: "=", RAttr: eqp.R.String()})
		}
	}
	if len(preds) > 0 {
		f.plan = &kba.Select{Input: f.plan, Preds: preds}
	}
	return nil
}

// tail adds the aggregate or projection (and DISTINCT) tail, returning the
// output column names parallel to the query's OutNames.
func (p *planner) tail(f *frag) ([]string, error) {
	colFor := func(ref ra.ColRef) (string, error) {
		if f.has(ref.String()) {
			return ref.String(), nil
		}
		if col, ok := f.cols[p.eq.Find(ref)]; ok {
			return col, nil
		}
		return "", fmt.Errorf("core: output column %s not materialized", ref)
	}
	var outCols []string
	var keyCols []string
	seen := make(map[string]bool)
	for _, ref := range p.q.Proj {
		col, err := colFor(ref)
		if err != nil {
			return nil, err
		}
		outCols = append(outCols, col)
		if !seen[col] {
			seen[col] = true
			keyCols = append(keyCols, col)
		}
	}
	if p.q.IsAggregate() {
		specs := make([]kba.AggSpec, len(p.q.Aggs))
		for i, a := range p.q.Aggs {
			spec := kba.AggSpec{Func: a.Func, Star: a.Star, Name: a.Name}
			if !a.Star {
				col, err := colFor(a.Col)
				if err != nil {
					return nil, err
				}
				spec.Attr = col
			}
			specs[i] = spec
			outCols = append(outCols, a.Name)
		}
		f.plan = &kba.GroupBy{Input: f.plan, Keys: keyCols, Aggs: specs}
		f.attrs = append(append([]string{}, keyCols...), namesOf(specs)...)
		return outCols, nil
	}
	f.plan = &kba.Project{Input: f.plan, Attrs: keyCols}
	f.attrs = keyCols
	if p.q.Distinct {
		f.plan = &kba.Distinct{Input: f.plan}
	}
	return outCols, nil
}

func namesOf(specs []kba.AggSpec) []string {
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

// extendBeatsScan decides whether probing the instance with one get per
// distinct fragment key beats scanning it, using the store statistics. A
// get costs roughly an order of magnitude more than a scan step in the
// storage profiles, so probing from an unbounded fragment only pays off
// when the target instance is much larger than the probe set.
func (p *planner) extendBeatsScan(f *frag, kvName string) bool {
	if p.c.Stats == nil {
		return true // no statistics: keep the chase behaviour
	}
	blocks := p.c.Stats.InstanceBlocks(kvName)
	if f.rowEst <= 0 || blocks <= 0 {
		return true
	}
	return blocks > 4*f.rowEst
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func attrsCover(have []string, want []string) bool {
	set := make(map[string]bool, len(have))
	for _, a := range have {
		set[a] = true
	}
	for _, w := range want {
		if !set[w] {
			return false
		}
	}
	return true
}

package core

import (
	"math/rand"
	"strings"
	"testing"

	"zidian/internal/baav"
	"zidian/internal/kv"
	"zidian/internal/ra"
	"zidian/internal/relation"
)

// splitFixture builds a database whose BaaV schema forces multi-step atom
// assembly: PRODUCT is split into a category index (without name/price) and
// a pk-keyed full schema, as in the quickstart example.
func splitFixture(t *testing.T) (*relation.Database, *baav.Store, *Checker) {
	t.Helper()
	db := relation.NewDatabase()
	prod := relation.NewRelation(relation.MustSchema("PRODUCT",
		[]relation.Attr{
			{Name: "product_id", Kind: relation.KindInt},
			{Name: "category", Kind: relation.KindString},
			{Name: "name", Kind: relation.KindString},
			{Name: "price", Kind: relation.KindFloat},
		}, []string{"product_id"}))
	for i := 0; i < 120; i++ {
		cat := []string{"books", "games", "tools"}[i%3]
		prod.MustInsert(relation.Tuple{
			relation.Int(int64(i)), relation.String(cat),
			relation.String(cat + "-item"), relation.Float(float64(i % 40)),
		})
	}
	db.Add(prod)
	schema := baav.MustSchema(baav.RelSchemas(db),
		baav.KVSchema{Name: "prod_by_cat", Rel: "PRODUCT", Key: []string{"category"}, Val: []string{"product_id"}},
		baav.KVSchema{Name: "prod_full", Rel: "PRODUCT", Key: []string{"product_id"}, Val: []string{"category", "name", "price"}},
		// prod_cat_price serves category-grouped aggregates from statistics.
		baav.KVSchema{Name: "prod_cat_price", Rel: "PRODUCT", Key: []string{"category"}, Val: []string{"price"}},
	)
	store, err := baav.Map(db, schema, kv.NewCluster(kv.EngineHash, 2), baav.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return db, store, NewChecker(schema, baav.RelSchemas(db)).WithStats(store)
}

// TestPlanMultiStepAnchor verifies the pk-refinement chain: category index
// first, then the pk-keyed full schema, with no scan.
func TestPlanMultiStepAnchor(t *testing.T) {
	db, store, c := splitFixture(t)
	q := ra.MustParse("select P.name, P.price from PRODUCT P where P.category = 'books'", db)
	if !c.ScanFree(q) {
		t.Fatal("Condition (III) holds via the pk-based closure")
	}
	info, err := c.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	if !info.ScanFree {
		t.Fatalf("plan must be scan-free: %s", info.Root)
	}
	if len(info.Extends) != 2 {
		t.Fatalf("expected a 2-step chain, got extends %v", info.Extends)
	}
	got, _, err := Answer(info, store)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := ra.Evaluate(q, db)
	if !got.Equal(want) {
		t.Fatalf("multi-step answer differs: %d vs %d rows", len(got.Rows), len(want.Rows))
	}
}

// TestPlanPartialWithoutPkFallsBack: a category index that does not carry
// the primary key cannot start a multi-step assembly — its derived keys
// (names) are not verified tuple projections, and joining on a non-key
// attribute would inflate multiplicities (40 identically named products
// here). The planner must fall back to a scan, and the answer must still be
// exactly right.
func TestPlanPartialWithoutPkFallsBack(t *testing.T) {
	db, _, _ := splitFixture(t)
	schema := baav.MustSchema(baav.RelSchemas(db),
		baav.KVSchema{Name: "prod_by_cat2", Rel: "PRODUCT", Key: []string{"category"}, Val: []string{"name"}},
		baav.KVSchema{Name: "prod_by_name", Rel: "PRODUCT", Key: []string{"name"}, Val: []string{"price", "product_id", "category"}},
	)
	store, err := baav.Map(db, schema, kv.NewCluster(kv.EngineHash, 2), baav.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	c := NewChecker(schema, baav.RelSchemas(db)).WithStats(store)
	q := ra.MustParse("select P.name, P.price from PRODUCT P where P.category = 'books'", db)
	info, err := c.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	if info.ScanFree {
		t.Fatalf("plan must fall back to a scan: %s", info.Root)
	}
	got, _, err := Answer(info, store)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := ra.Evaluate(q, db)
	if !got.Equal(want) {
		t.Fatalf("answer differs (%d vs %d rows): plan %s", len(got.Rows), len(want.Rows), info.Root)
	}
}

func TestPlanStatsAggSelection(t *testing.T) {
	db, store, c := splitFixture(t)
	q := ra.MustParse("select P.category, COUNT(*), AVG(P.price) from PRODUCT P group by P.category", db)
	info, err := c.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	if !info.UsedStats {
		t.Fatalf("expected statistics pushdown, got %s", info.Root)
	}
	if !strings.Contains(info.Root.String(), "γstats") {
		t.Fatalf("plan = %s", info.Root)
	}
	got, stats, err := Answer(info, store)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := ra.Evaluate(q, db)
	if !got.Equal(want) {
		t.Fatalf("stats answer differs:\n got %v\nwant %v", got.Rows, want.Rows)
	}
	if stats.DataValues != 0 {
		t.Fatalf("stats plan must not decode tuple data, counted %d", stats.DataValues)
	}

	// Predicates disable the pushdown.
	q2 := ra.MustParse("select P.category, COUNT(*) from PRODUCT P where P.price > 10 group by P.category", db)
	info2, err := c.Plan(q2)
	if err != nil {
		t.Fatal(err)
	}
	if info2.UsedStats {
		t.Fatal("filters must disable the statistics pushdown")
	}
	// Non-numeric aggregate attributes disable it too.
	q3 := ra.MustParse("select P.category, MIN(P.name) from PRODUCT P group by P.category", db)
	info3, err := c.Plan(q3)
	if err != nil {
		t.Fatal(err)
	}
	if info3.UsedStats {
		t.Fatal("string aggregates cannot come from numeric statistics")
	}
	// Stores without statistics disable it.
	optsNoStats := baav.DefaultOptions()
	optsNoStats.Stats = false
	store2, err := baav.Map(db, c.Schema, kv.NewCluster(kv.EngineHash, 2), optsNoStats)
	if err != nil {
		t.Fatal(err)
	}
	c2 := NewChecker(c.Schema, c.Rels).WithStats(store2)
	info4, err := c2.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	if info4.UsedStats {
		t.Fatal("pushdown requires statistics in the store")
	}
}

// TestCostBasedScanVsProbe: with statistics, probing a small instance from a
// large scanned fragment is rejected in favour of scanning it.
func TestCostBasedScanVsProbe(t *testing.T) {
	db := relation.NewDatabase()
	big := relation.NewRelation(relation.MustSchema("EVENTS",
		[]relation.Attr{{Name: "event_id", Kind: relation.KindInt}, {Name: "dim_id", Kind: relation.KindInt}},
		[]string{"event_id"}))
	for i := 0; i < 4000; i++ {
		big.MustInsert(relation.Tuple{relation.Int(int64(i)), relation.Int(int64(i % 20))})
	}
	db.Add(big)
	dim := relation.NewRelation(relation.MustSchema("DIM",
		[]relation.Attr{{Name: "dim_id", Kind: relation.KindInt}, {Name: "label", Kind: relation.KindString}},
		[]string{"dim_id"}))
	for i := 0; i < 20; i++ {
		dim.MustInsert(relation.Tuple{relation.Int(int64(i)), relation.String("L")})
	}
	db.Add(dim)
	schema := baav.MustSchema(baav.RelSchemas(db),
		baav.KVSchema{Name: "events_full", Rel: "EVENTS", Key: []string{"event_id"}, Val: []string{"dim_id"}},
		baav.KVSchema{Name: "dim_full", Rel: "DIM", Key: []string{"dim_id"}, Val: []string{"label"}},
	)
	store, err := baav.Map(db, schema, kv.NewCluster(kv.EngineHash, 2), baav.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	q := ra.MustParse("select D.label, COUNT(*) from EVENTS E, DIM D where E.dim_id = D.dim_id group by D.label", db)

	// Without stats the planner keeps the chase behaviour (probe).
	noStats := NewChecker(schema, baav.RelSchemas(db))
	infoProbe, err := noStats.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(infoProbe.Extends) == 0 {
		t.Fatalf("expected a probe without statistics: %s", infoProbe.Root)
	}
	// With stats, DIM (20 blocks) is scanned instead of probed from the
	// 4000-row scan fragment... wait: 20 blocks <= 4*4000, so scanning wins.
	withStats := NewChecker(schema, baav.RelSchemas(db)).WithStats(store)
	infoScan, err := withStats.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(infoScan.Scans) < 2 {
		t.Fatalf("expected DIM to be scanned under the cost model: %s", infoScan.Root)
	}
	// Both answer identically.
	a1, _, err := Answer(infoProbe, store)
	if err != nil {
		t.Fatal(err)
	}
	a2, _, err := Answer(infoScan, store)
	if err != nil {
		t.Fatal(err)
	}
	if !a1.Equal(a2) {
		t.Fatal("probe and scan plans must agree")
	}
}

// TestRandomizedDifferential drives randomly generated conjunctive queries
// through plan generation and both executors, comparing against the
// reference evaluator.
func TestRandomizedDifferential(t *testing.T) {
	db, store, c := fixture(t, 42)
	r := rand.New(rand.NewSource(123))
	aliases := []struct{ rel, alias string }{
		{"NATION", "N"}, {"SUPPLIER", "S"}, {"PARTSUPP", "PS"}, {"PARTSUPP", "PS2"},
	}
	joinable := map[string][]string{
		"N":   {"nationkey"},
		"S":   {"nationkey", "suppkey"},
		"PS":  {"suppkey", "partkey", "supplycost", "availqty"},
		"PS2": {"suppkey", "partkey", "supplycost", "availqty"},
	}
	for trial := 0; trial < 60; trial++ {
		n := 1 + r.Intn(3)
		chosen := make([]struct{ rel, alias string }, 0, n)
		seen := map[string]bool{}
		for len(chosen) < n {
			a := aliases[r.Intn(len(aliases))]
			if !seen[a.alias] {
				seen[a.alias] = true
				chosen = append(chosen, a)
			}
		}
		var fromParts, preds, projs []string
		for _, a := range chosen {
			fromParts = append(fromParts, a.rel+" "+a.alias)
		}
		// Join consecutive atoms on a shared attribute name when possible.
		for i := 1; i < len(chosen); i++ {
			l, rr := chosen[i-1], chosen[i]
			for _, la := range joinable[l.alias] {
				match := false
				for _, ra2 := range joinable[rr.alias] {
					if la == ra2 {
						preds = append(preds, l.alias+"."+la+" = "+rr.alias+"."+la)
						match = true
						break
					}
				}
				if match {
					break
				}
			}
		}
		// Constant predicate on a random atom.
		a := chosen[r.Intn(len(chosen))]
		switch a.alias {
		case "N":
			preds = append(preds, "N.name = 'GERMANY'")
		case "S":
			preds = append(preds, "S.nationkey = 2")
		default:
			preds = append(preds, a.alias+".suppkey = "+[]string{"3", "7", "11"}[r.Intn(3)])
		}
		// Projection: one attribute per atom.
		for _, a := range chosen {
			attrs := joinable[a.alias]
			projs = append(projs, a.alias+"."+attrs[r.Intn(len(attrs))])
		}
		src := "select " + strings.Join(projs, ", ") + " from " + strings.Join(fromParts, ", ") +
			" where " + strings.Join(preds, " and ")
		q, err := ra.Parse(src, db)
		if err != nil {
			t.Fatalf("generated bad SQL %q: %v", src, err)
		}
		want, err := ra.Evaluate(q, db)
		if err != nil {
			t.Fatalf("reference %q: %v", src, err)
		}
		info, err := c.Plan(q)
		if err != nil {
			t.Fatalf("plan %q: %v", src, err)
		}
		got, _, err := Answer(info, store)
		if err != nil {
			t.Fatalf("answer %q: %v", src, err)
		}
		if !got.Equal(want) {
			t.Fatalf("differential mismatch (%d vs %d rows) for %q\nplan %s",
				len(got.Rows), len(want.Rows), src, info.Root)
		}
	}
}

package zidian

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"zidian/internal/obs"
)

// The MVCC differential suite: concurrent readers must observe exactly the
// committed state at their pinned sequence — byte-identical to a serial
// replay of the write script truncated at that sequence — on every engine,
// while reclamation never frees a version a pinned snapshot can reach.

var mvccEngines = []string{"hash", "lsm", "sorted"}

// mvccItemsInstance builds the ITEM fixture (200 rows, secondary indexes on
// sku and qty) on one engine. Workers is 1 so the only concurrency in play
// is inter-statement.
func mvccItemsInstance(t *testing.T, engine string) *Instance {
	t.Helper()
	db := NewDatabase()
	schema := MustRelSchema("ITEM", []Attr{
		{Name: "item_id", Kind: KindInt},
		{Name: "sku", Kind: KindString},
		{Name: "qty", Kind: KindInt},
	}, []string{"item_id"})
	rel := NewRelation(schema)
	for i := 0; i < 200; i++ {
		rel.MustInsert(Tuple{
			Int(int64(i)),
			String(fmt.Sprintf("SKU-%05d", i/4)),
			Int(int64(i % 50)),
		})
	}
	db.Add(rel)
	bv, err := NewBaaVSchema(db, KVSchema{
		Name: "item_full", Rel: "ITEM", Key: []string{"item_id"}, Val: []string{"sku", "qty"},
	})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := Open(db, bv, Options{Engine: engine, Nodes: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, ddl := range []string{
		"create index ix_mvcc_sku on ITEM(sku)",
		"create index ix_mvcc_qty on ITEM(qty)",
	} {
		if _, err := inst.Exec(ddl); err != nil {
			t.Fatal(err)
		}
	}
	return inst
}

// mvccWriteScript is the deterministic single-writer op sequence: inserts of
// fresh rows, point deletes, and predicate deletes through the group
// committer. Re-deleting an already-deleted row is a no-op but still its own
// commit, so sequence s on any instance that ran the same setup means
// "exactly the first s-base ops applied".
func mvccWriteScript(n int) []string {
	ops := make([]string, n)
	for i := range ops {
		switch i % 3 {
		case 0:
			ops[i] = fmt.Sprintf("insert into ITEM values (%d, 'SKU-%05d', %d)", 1000+i, (1000+i)/4, i%50)
		case 1:
			ops[i] = fmt.Sprintf("delete from ITEM where item_id = %d", (i*7)%200)
		default:
			ops[i] = fmt.Sprintf("delete from ITEM where qty = %d and item_id < 40", i%50)
		}
	}
	return ops
}

// mvccReadSuite covers the three reader shapes: an index point lookup, an
// index range walk, and a full-relation aggregate.
var mvccReadSuite = []string{
	"select I.qty from ITEM I where I.sku = 'SKU-00012'",
	"select I.item_id from ITEM I where I.qty between 10 and 20",
	"select COUNT(*), SUM(I.qty), MIN(I.item_id), MAX(I.item_id) from ITEM I",
}

// renderRows canonicalizes a result for comparison: one string per row,
// sorted (readers and replay may emit rows in different orders).
func renderRows(res *Result) string {
	rows := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		parts := make([]string, len(r))
		for j, v := range r {
			parts[j] = v.String()
		}
		rows[i] = strings.Join(parts, "|")
	}
	sort.Strings(rows)
	return strings.Join(rows, "\n")
}

func TestMVCCSnapshotDifferential(t *testing.T) {
	const nOps = 45
	ops := mvccWriteScript(nOps)
	for _, engine := range mvccEngines {
		t.Run(engine, func(t *testing.T) {
			// Serial replay first: expected[s][q] is query q's result with
			// exactly s script ops applied.
			replay := mvccItemsInstance(t, engine)
			base := replay.CommitSeq("ITEM")
			expected := make([][]string, nOps+1)
			snapshotState := func(in *Instance) []string {
				out := make([]string, len(mvccReadSuite))
				for qi, src := range mvccReadSuite {
					res, _, err := in.Query(src)
					if err != nil {
						t.Fatalf("replay query %d: %v", qi, err)
					}
					out[qi] = renderRows(res)
				}
				return out
			}
			expected[0] = snapshotState(replay)
			for i, op := range ops {
				if _, err := replay.Exec(op); err != nil {
					t.Fatalf("replay op %d %q: %v", i, op, err)
				}
				expected[i+1] = snapshotState(replay)
			}

			// Concurrent phase: one writer streams the same script while one
			// reader per query shape hammers it, checking every result
			// against the serial truth at its pinned sequence.
			inst := mvccItemsInstance(t, engine)
			if got := inst.CommitSeq("ITEM"); got != base {
				t.Fatalf("setup sequence differs: %d vs replay %d", got, base)
			}
			var (
				writerDone atomic.Bool
				mu         sync.Mutex
				failures   []string
				reads      int64
			)
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer writerDone.Store(true)
				for i, op := range ops {
					if _, err := inst.Exec(op); err != nil {
						mu.Lock()
						failures = append(failures, fmt.Sprintf("writer op %d: %v", i, err))
						mu.Unlock()
						return
					}
				}
			}()
			for qi, src := range mvccReadSuite {
				p, err := inst.Prepare(src)
				if err != nil {
					t.Fatal(err)
				}
				wg.Add(1)
				go func(qi int, p *Prepared) {
					defer wg.Done()
					for {
						done := writerDone.Load() // load BEFORE the read: a read started after done is at the final state
						tr := &obs.Trace{}
						res, _, err := p.RunTraced(tr)
						var fail string
						switch {
						case err != nil:
							fail = fmt.Sprintf("reader %d: %v", qi, err)
						case tr.SnapshotSeqs["ITEM"] < base || tr.SnapshotSeqs["ITEM"] > base+nOps:
							fail = fmt.Sprintf("reader %d: pinned seq %d outside [%d,%d]", qi, tr.SnapshotSeqs["ITEM"], base, base+nOps)
						default:
							s := tr.SnapshotSeqs["ITEM"] - base
							if got := renderRows(res); got != expected[s][qi] {
								fail = fmt.Sprintf("reader %d at seq %d diverged from serial replay:\n got: %q\nwant: %q", qi, s, got, expected[s][qi])
							}
						}
						if fail != "" {
							mu.Lock()
							failures = append(failures, fail)
							mu.Unlock()
							return
						}
						atomic.AddInt64(&reads, 1)
						if done {
							return
						}
					}
				}(qi, p)
			}
			wg.Wait()
			for _, f := range failures {
				t.Error(f)
			}
			if t.Failed() {
				return
			}
			if reads < int64(len(mvccReadSuite)) {
				t.Fatalf("only %d reads completed", reads)
			}

			// One quiescent flush commit on both instances lets the final
			// Reclaim run with no pins; after it, version accounting is
			// state-determined and must match exactly.
			flush := "insert into ITEM values (9999, 'SKU-FLUSH', 1)"
			if _, err := inst.Exec(flush); err != nil {
				t.Fatal(err)
			}
			if _, err := replay.Exec(flush); err != nil {
				t.Fatal(err)
			}
			gotLive, gotReclaimed := inst.MVCCVersions()
			wantLive, wantReclaimed := replay.MVCCVersions()
			if gotLive != wantLive || gotReclaimed != wantReclaimed {
				t.Fatalf("version accounting diverged: live=%d/%d reclaimed=%d/%d (concurrent/replay)",
					gotLive, wantLive, gotReclaimed, wantReclaimed)
			}
			for qi, src := range mvccReadSuite {
				res, _, err := inst.Query(src)
				if err != nil {
					t.Fatal(err)
				}
				res2, _, err := replay.Query(src)
				if err != nil {
					t.Fatal(err)
				}
				if renderRows(res) != renderRows(res2) {
					t.Fatalf("final state of query %d diverged", qi)
				}
			}
		})
	}
}

// TestGroupCommitBatching: concurrent writers of one relation fold into
// shared commits — the observer must see at least one batch larger than a
// single statement, and no write may be lost. The emulated storage delay
// keeps each commit in flight long enough for followers to queue.
func TestGroupCommitBatching(t *testing.T) {
	inst := mvccItemsInstance(t, "hash")
	inst.Store().Cluster.SetOpDelay(200 * time.Microsecond)
	var maxBatch int64
	inst.SetCommitObserver(func(n int) {
		for {
			cur := atomic.LoadInt64(&maxBatch)
			if int64(n) <= cur || atomic.CompareAndSwapInt64(&maxBatch, cur, int64(n)) {
				return
			}
		}
	})
	const writers, perWriter = 16, 4
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := int64(5000 + w*perWriter + i)
				if err := inst.Insert("ITEM", Tuple{Int(id), String("SKU-BATCH"), Int(int64(w))}); err != nil {
					t.Error(err)
				}
			}
		}(w)
	}
	wg.Wait()
	res, _, err := inst.Query("select COUNT(*) from ITEM I where I.sku = 'SKU-BATCH'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int != writers*perWriter {
		t.Fatalf("lost writes: %v, want %d", res.Rows, writers*perWriter)
	}
	if atomic.LoadInt64(&maxBatch) < 2 {
		t.Fatalf("max commit batch = %d, want >= 2 under %d concurrent writers", maxBatch, writers)
	}
}

// TestMVCCPinBlocksReclamation: while a snapshot is pinned the store keeps
// every version it can reach; releasing the pin lets the next commit reclaim
// them.
func TestMVCCPinBlocksReclamation(t *testing.T) {
	inst := mvccItemsInstance(t, "hash")
	snap := inst.Store().PinSnapshot([]string{"ITEM"})
	live0, reclaimed0 := inst.MVCCVersions()

	// Deletes supersede each row's block with a tombstone version; the old
	// version retires but stays reachable from the pinned snapshot.
	for i := 0; i < 3; i++ {
		if _, err := inst.Exec(fmt.Sprintf("delete from ITEM where item_id = %d", i)); err != nil {
			t.Fatal(err)
		}
	}
	live, reclaimed := inst.MVCCVersions()
	if reclaimed != reclaimed0 {
		t.Fatalf("reclaimed %d versions while a snapshot pinned them", reclaimed-reclaimed0)
	}
	if live <= live0 {
		t.Fatalf("superseded versions not retained: live %d -> %d", live0, live)
	}

	snap.Release()
	if _, err := inst.Exec("delete from ITEM where item_id = 3"); err != nil {
		t.Fatal(err)
	}
	if _, reclaimedAfter := inst.MVCCVersions(); reclaimedAfter == reclaimed0 {
		t.Fatal("releasing the pin did not unblock reclamation")
	}
}

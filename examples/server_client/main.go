// Server quickstart: start the Zidian query service in-process over the
// synthetic MOT workload, then talk to it the way a real deployment would —
// over TCP with the wire-protocol client and over HTTP with plain GET.
// Demonstrates plan-cache reuse (the second identical query skips
// parse/check/plan), prepared statements, and the stats surface.
//
// For a two-process deployment, run the same thing as separate binaries:
//
//	zidian-server -workload mot -tcp :7071 -http :7072
//	zidian-loadgen -addr localhost:7071 -clients 64 -requests 200
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"net/http"
	"time"

	"zidian/internal/server"
	"zidian/internal/server/client"
)

func main() {
	// 1. Load a dataset and start the service on loopback ports.
	inst, _, err := server.OpenWorkload("mot", 0.5, 7, 4, 4)
	if err != nil {
		log.Fatal(err)
	}
	srv := server.New(inst, server.Config{})
	tcpAddr, httpAddr, err := srv.Start("127.0.0.1:0", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serving on tcp %s, http %s\n\n", tcpAddr, httpAddr)

	// 2. A wire-protocol client session.
	c, err := client.Dial(tcpAddr)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	sql := "select T.test_date, T.result, T.mileage from TEST T where T.vehicle_id = 42"
	for i := 0; i < 2; i++ {
		cols, rows, stats, err := c.Query(sql)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query #%d: %d rows over %v, scan-free=%v, plan cached=%v\n",
			i+1, len(rows), cols, stats.ScanFree, stats.CacheHit)
	}

	// 3. Prepared statements name a compiled plan inside the session.
	if err := c.Prepare("history", "select T.test_date, T.result from TEST T where T.vehicle_id = 7"); err != nil {
		log.Fatal(err)
	}
	_, rows, _, err := c.Execute("history")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("prepared execution: %d rows\n", len(rows))

	// 4. The same service over HTTP.
	resp, err := http.Get("http://" + httpAddr +
		"/query?q=select+V.make,+V.model+from+VEHICLE+V+where+V.vehicle_id+=+42")
	if err != nil {
		log.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("http /query: %s", body)

	// 5. Server statistics, then a graceful drain.
	st, err := c.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("served %d statements, plan cache %.0f%% hit rate\n",
		st.Queries, 100*st.PlanCache.HitRate)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("server drained cleanly")
}

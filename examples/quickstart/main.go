// Quickstart: build a small relational database, let T2B design a BaaV
// schema for your query workload, open a Zidian instance, and run queries —
// watching which ones are answered scan-free.
package main

import (
	"fmt"
	"log"

	"zidian"
)

func main() {
	// 1. A small database: products and orders.
	db := zidian.NewDatabase()

	products := zidian.NewRelation(zidian.MustRelSchema("PRODUCT",
		[]zidian.Attr{
			{Name: "product_id", Kind: zidian.KindInt},
			{Name: "category", Kind: zidian.KindString},
			{Name: "name", Kind: zidian.KindString},
			{Name: "price", Kind: zidian.KindFloat},
		}, []string{"product_id"}))
	for i := 0; i < 200; i++ {
		cat := []string{"books", "games", "tools", "garden"}[i%4]
		products.MustInsert(zidian.Tuple{
			zidian.Int(int64(i)), zidian.String(cat),
			zidian.String(fmt.Sprintf("%s item %d", cat, i)),
			zidian.Float(float64(5 + i%50)),
		})
	}
	db.Add(products)

	orders := zidian.NewRelation(zidian.MustRelSchema("ORDERLINE",
		[]zidian.Attr{
			{Name: "order_id", Kind: zidian.KindInt},
			{Name: "product_id", Kind: zidian.KindInt},
			{Name: "quantity", Kind: zidian.KindInt},
		}, []string{"order_id"}))
	for i := 0; i < 1000; i++ {
		orders.MustInsert(zidian.Tuple{
			zidian.Int(int64(i)), zidian.Int(int64((i * 7) % 200)), zidian.Int(int64(1 + i%5)),
		})
	}
	db.Add(orders)

	// 2. Design a BaaV schema from the workload you expect to run (T2B).
	workload := []string{
		"select P.name, P.price from PRODUCT P where P.category = 'books'",
		"select SUM(O.quantity) from ORDERLINE O, PRODUCT P where P.category = 'games' and O.product_id = P.product_id",
	}
	schema, report, err := zidian.DesignSchema(db, workload, 0, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("T2B designed %d KV schemas (from %d access patterns):\n", report.FinalKVs, report.Patterns)
	for _, s := range schema.KVs {
		fmt.Printf("  %s\n", s)
	}

	// 3. Open an instance: the database is mapped to keyed blocks.
	inst, err := zidian.Open(db, schema, zidian.Options{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	if ok, _ := inst.DataPreserving(); ok {
		fmt.Println("schema is data preserving: the BaaV store can replace the base store")
	}

	// 4. Run queries; scan-free ones never touch irrelevant data.
	for _, src := range append(workload,
		"select AVG(P.price) from PRODUCT P" /* whole-table: not scan-free */) {
		res, stats, err := inst.Query(src)
		if err != nil {
			log.Fatal(err)
		}
		kind := "full scan"
		if stats.ScanFree {
			kind = "scan-free"
		}
		fmt.Printf("\n%s\n  -> %d rows, %s, %d gets, %d values fetched\n",
			src, len(res.Rows), kind, stats.Gets, stats.DataValues)
		fmt.Printf("  plan: %s\n", stats.Plan)
	}
}

// Schema design with T2B (Section 8.1): extract QCS access patterns from a
// query workload and design BaaV schemas under progressively tighter storage
// budgets, watching which queries stay scan-free as the budget shrinks.
package main

import (
	"fmt"
	"log"

	"zidian"
	"zidian/internal/workload"
)

func main() {
	w := workload.AIRCA(workload.Spec{Scale: 0.5, Seed: 7})
	db := w.DB

	var sql []string
	var names []string
	for _, q := range w.Queries {
		sql = append(sql, q.SQL)
		names = append(names, q.Name)
	}

	// Unlimited budget first, to learn the full size.
	schema, report, err := zidian.DesignSchema(db, sql, 0, false)
	if err != nil {
		log.Fatal(err)
	}
	full := report.EstimatedSize
	fmt.Printf("workload: %d queries over %d relations (%d tuples)\n",
		len(sql), len(db.Schemas()), db.Cardinality())
	fmt.Printf("T2B with no budget: %d patterns -> %d initial -> %d final KV schemas, ~%d KB mapped\n",
		report.Patterns, report.InitialKVs, report.FinalKVs, full/1024)
	for _, s := range schema.KVs {
		fmt.Printf("  %s\n", s)
	}

	// Now shrink the budget and watch coverage degrade gracefully.
	fmt.Printf("\n%10s %8s %12s %s\n", "budget", "schemas", "size (KB)", "scan-free queries")
	for _, frac := range []float64{1.0, 0.75, 0.5, 0.25} {
		budget := int64(float64(full) * frac)
		_, rep, err := zidian.DesignSchema(db, sql, budget, false)
		if err != nil {
			log.Fatal(err)
		}
		scanFree := 0
		var lost []string
		for i, sf := range rep.ScanFree {
			if sf {
				scanFree++
			} else if w.Queries[i].ScanFree {
				lost = append(lost, names[i])
			}
		}
		fmt.Printf("%9.0f%% %8d %12d %d/%d", frac*100, rep.FinalKVs, rep.EstimatedSize/1024, scanFree, len(sql))
		if len(lost) > 0 {
			fmt.Printf("  (lost: %v)", lost)
		}
		fmt.Println()
	}
}

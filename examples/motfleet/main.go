// Bounded queries on skewed fleet telemetry (the MOT workload): the cost of
// a bounded query stays flat while the database grows — Section 6.1's
// boundedness guarantee, and the effect behind Figures 3a and 4e of the
// paper. The example also exercises incremental maintenance: new test
// records are folded into the affected keyed blocks in O(deg) time.
package main

import (
	"fmt"
	"log"

	"zidian"
	"zidian/internal/workload"
)

const vehicleHistory = `
	select T.test_date, T.result, T.mileage
	from TEST T where T.vehicle_id = 42`

func main() {
	fmt.Println("bounded query:", vehicleHistory)
	fmt.Printf("\n%8s %10s %8s %10s %12s\n", "scale", "tuples", "gets", "#data", "scan-free")
	for _, scale := range []float64{0.5, 1, 2, 4, 8} {
		w := workload.MOT(workload.Spec{Scale: scale, Seed: 7})
		inst, err := zidian.Open(w.DB, w.Schema, zidian.Options{Workers: 4})
		if err != nil {
			log.Fatal(err)
		}
		_, stats, err := inst.Query(vehicleHistory)
		if err != nil {
			log.Fatal(err)
		}
		kind := fmt.Sprintf("%v", stats.ScanFree)
		if stats.Bounded {
			kind += " (bounded)"
		}
		fmt.Printf("%8g %10d %8d %10d %12s\n",
			scale, w.DB.Cardinality(), stats.Gets, stats.DataValues, kind)
	}

	// Incremental maintenance: insert fresh test records for vehicle 42 and
	// watch the same query pick them up without remapping anything.
	w := workload.MOT(workload.Spec{Scale: 1, Seed: 7})
	inst, err := zidian.Open(w.DB, w.Schema, zidian.Options{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	before, _, err := inst.Query(vehicleHistory)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		err := inst.Insert("TEST", zidian.Tuple{
			zidian.Int(int64(900000 + i)), zidian.Int(42), zidian.Int(3),
			zidian.String("2011-07-01"), zidian.String("PASS"), zidian.Int(88000 + int64(i)),
			zidian.String("CLASS-4"), zidian.Float(54.85), zidian.Int(45),
			zidian.Int(0), zidian.Int(0), zidian.Int(0), zidian.Int(77), zidian.String("MI"),
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	after, _, err := inst.Query(vehicleHistory)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nincremental maintenance: vehicle 42 had %d tests, now %d (3 inserted)\n",
		len(before.Rows), len(after.Rows))
}

// The paper's running example (Examples 1, 3 and 7; Table 2): TPC-H query
// q11 simplified, answered over a BaaV store by the chase-generated plan
//
//	group_by((("GERMANY" ∝ ~NATION) ∝ ~SUPPLIER) ∝ ~PARTSUPP,
//	         PS.suppkey, SUM(PS.supplycost))
//
// and compared against the TaaV baseline that scans all three relations.
package main

import (
	"fmt"
	"log"

	"zidian/internal/baav"
	"zidian/internal/core"
	"zidian/internal/kv"
	"zidian/internal/parallel"
	"zidian/internal/ra"
	"zidian/internal/taav"
	"zidian/internal/workload"
)

func main() {
	w := workload.TPCH(workload.Spec{Scale: 1, Seed: 7})
	fmt.Printf("TPC-H: %d tuples across %d relations\n", w.DB.Cardinality(), len(w.DB.Schemas()))

	profile := kv.ProfileHStore // HBase-like storage (the paper's SoH)
	nodes, workers := 8, 8

	baavStore, err := baav.Map(w.DB, w.Schema, kv.NewCluster(profile.EngineKind(), nodes), baav.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	taavStore, err := taav.Map(w.DB, kv.NewCluster(profile.EngineKind(), nodes))
	if err != nil {
		log.Fatal(err)
	}

	q, err := ra.Parse(workload.PaperQ1, w.DB)
	if err != nil {
		log.Fatal(err)
	}
	checker := core.NewChecker(w.Schema, baav.RelSchemas(w.DB)).WithStats(baavStore)
	info, err := checker.Plan(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nKBA plan (scan-free = %v):\n  %s\n", info.ScanFree, info.Root)

	// Zidian: interleaved parallel execution of the KBA plan.
	before := baavStore.Cluster.Metrics()
	zRes, zM, err := parallel.RunKBA(info, baavStore, workers)
	if err != nil {
		log.Fatal(err)
	}
	zDelta := baavStore.Cluster.Metrics().Sub(before)

	// Baseline: full retrieval + parallel hash joins.
	before = taavStore.Cluster.Metrics()
	bRes, bM, err := parallel.RunTaaV(q, taavStore, workers)
	if err != nil {
		log.Fatal(err)
	}
	bDelta := taavStore.Cluster.Metrics().Sub(before)

	if !zRes.Equal(bRes) {
		log.Fatal("answers differ!")
	}
	fmt.Printf("\nboth systems agree on %d result groups; first rows:\n", len(zRes.Rows))
	for i, row := range zRes.Rows {
		if i == 5 {
			break
		}
		fmt.Printf("  suppkey=%v total=%v\n", row[0], row[1])
	}

	zSim := profile.QueryUS(zDelta, zM.ShuffleBytes, nodes, workers) / 1000
	bSim := profile.QueryUS(bDelta, bM.ShuffleBytes, nodes, workers) / 1000
	fmt.Printf("\n%-22s %12s %12s %10s\n", "Table 2 (SoH)", "baseline", "Zidian", "ratio")
	fmt.Printf("%-22s %12.2f %12.2f %9.1fx\n", "time (ms, simulated)", bSim, zSim, bSim/zSim)
	fmt.Printf("%-22s %12d %12d %9.1fx\n", "#data (values)", bM.DataValues, zM.DataValues,
		float64(bM.DataValues)/float64(zM.DataValues))
	fmt.Printf("%-22s %12d %12d %9.1fx\n", "#get", bDelta.Gets+bDelta.ScanNexts, zDelta.Gets+zDelta.ScanNexts,
		float64(bDelta.Gets+bDelta.ScanNexts)/float64(zDelta.Gets+zDelta.ScanNexts))
	fmt.Printf("%-22s %12.3f %12.3f %9.1fx\n", "comm (MB)",
		float64(bM.FetchBytes+bM.ShuffleBytes)/(1<<20),
		float64(zM.FetchBytes+zM.ShuffleBytes)/(1<<20),
		float64(bM.FetchBytes+bM.ShuffleBytes)/float64(zM.FetchBytes+zM.ShuffleBytes))
}

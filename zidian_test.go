package zidian

import (
	"fmt"
	"strings"
	"testing"
)

// facadeDB builds the paper's Example 1 database through the public API.
func facadeDB(t *testing.T) *Database {
	t.Helper()
	db := NewDatabase()
	nation := NewRelation(MustRelSchema("NATION",
		[]Attr{{Name: "nationkey", Kind: KindInt}, {Name: "name", Kind: KindString}},
		[]string{"nationkey"}))
	nation.MustInsert(Tuple{Int(1), String("GERMANY")})
	nation.MustInsert(Tuple{Int(2), String("FRANCE")})
	db.Add(nation)
	supplier := NewRelation(MustRelSchema("SUPPLIER",
		[]Attr{{Name: "suppkey", Kind: KindInt}, {Name: "nationkey", Kind: KindInt}},
		[]string{"suppkey"}))
	supplier.MustInsert(Tuple{Int(10), Int(1)})
	supplier.MustInsert(Tuple{Int(11), Int(1)})
	supplier.MustInsert(Tuple{Int(12), Int(2)})
	db.Add(supplier)
	return db
}

func facadeInstance(t *testing.T) *Instance {
	t.Helper()
	db := facadeDB(t)
	schema, err := NewBaaVSchema(db,
		KVSchema{Name: "nation_by_name", Rel: "NATION", Key: []string{"name"}, Val: []string{"nationkey"}},
		KVSchema{Name: "supplier_by_nation", Rel: "SUPPLIER", Key: []string{"nationkey"}, Val: []string{"suppkey"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := Open(db, schema, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestFacadeQuery(t *testing.T) {
	inst := facadeInstance(t)
	res, stats, err := inst.Query(
		"select S.suppkey from SUPPLIER S, NATION N where S.nationkey = N.nationkey and N.name = 'GERMANY'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if !stats.ScanFree || !stats.Bounded {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.Gets == 0 || stats.Plan == "" {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestFacadeExplain(t *testing.T) {
	inst := facadeInstance(t)
	plan, err := inst.Explain(
		"select S.suppkey from SUPPLIER S, NATION N where S.nationkey = N.nationkey and N.name = 'GERMANY'")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "scan-free") || !strings.Contains(plan, "∝") {
		t.Fatalf("explain = %s", plan)
	}
	plan, err = inst.Explain("select S.suppkey from SUPPLIER S")
	if err != nil || !strings.Contains(plan, "not scan-free") {
		t.Fatalf("explain = %s err=%v", plan, err)
	}
	plan, err = inst.Explain("select S.suppkey from SUPPLIER S where S.nationkey = 1 and S.nationkey = 2")
	if err != nil || !strings.Contains(plan, "empty") {
		t.Fatalf("explain = %s err=%v", plan, err)
	}
	if _, err := inst.Explain("not sql"); err == nil {
		t.Fatal("bad SQL must error")
	}
}

func TestFacadeMaintenance(t *testing.T) {
	inst := facadeInstance(t)
	if err := inst.Insert("SUPPLIER", Tuple{Int(13), Int(1)}); err != nil {
		t.Fatal(err)
	}
	res, _, err := inst.Query(
		"select S.suppkey from SUPPLIER S, NATION N where S.nationkey = N.nationkey and N.name = 'GERMANY'")
	if err != nil || len(res.Rows) != 3 {
		t.Fatalf("after insert: %v %v", res, err)
	}
	if err := inst.Delete("SUPPLIER", Tuple{Int(13), Int(1)}); err != nil {
		t.Fatal(err)
	}
	res, _, _ = inst.Query(
		"select S.suppkey from SUPPLIER S, NATION N where S.nationkey = N.nationkey and N.name = 'GERMANY'")
	if len(res.Rows) != 2 {
		t.Fatalf("after delete: %v", res.Rows)
	}
	if err := inst.Insert("NOPE", Tuple{}); err == nil {
		t.Fatal("unknown relation")
	}
	if err := inst.Delete("NOPE", Tuple{}); err == nil {
		t.Fatal("unknown relation")
	}
	// Deleting a missing tuple is a no-op.
	if err := inst.Delete("SUPPLIER", Tuple{Int(99), Int(9)}); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeDataPreserving(t *testing.T) {
	inst := facadeInstance(t)
	ok, missing := inst.DataPreserving()
	if !ok || len(missing) != 0 {
		t.Fatalf("ok=%v missing=%v", ok, missing)
	}
	sf, err := inst.ScanFree("select N.nationkey from NATION N where N.name = 'FRANCE'")
	if err != nil || !sf {
		t.Fatalf("scan free = %v err=%v", sf, err)
	}
	if _, err := inst.ScanFree("nonsense"); err == nil {
		t.Fatal("bad SQL must error")
	}
}

func TestFacadeDesignSchema(t *testing.T) {
	db := facadeDB(t)
	schema, report, err := DesignSchema(db, []string{
		"select S.suppkey from SUPPLIER S, NATION N where S.nationkey = N.nationkey and N.name = 'GERMANY'",
	}, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if report.FinalKVs == 0 {
		t.Fatalf("report = %+v", report)
	}
	inst, err := Open(db, schema, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, stats, err := inst.Query(
		"select S.suppkey from SUPPLIER S, NATION N where S.nationkey = N.nationkey and N.name = 'GERMANY'")
	if err != nil || len(res.Rows) != 2 || !stats.ScanFree {
		t.Fatalf("designed schema: %v %+v %v", res, stats, err)
	}
	if _, _, err := DesignSchema(db, []string{"bad sql"}, 0, false); err == nil {
		t.Fatal("bad workload SQL must error")
	}
}

func TestFacadeStoreAccess(t *testing.T) {
	inst := facadeInstance(t)
	if inst.Store() == nil {
		t.Fatal("store must be exposed")
	}
	if inst.Store().Degree("supplier_by_nation") != 2 {
		t.Fatalf("degree = %d", inst.Store().Degree("supplier_by_nation"))
	}
}

func TestFacadeExec(t *testing.T) {
	inst := facadeInstance(t)
	// INSERT through SQL.
	res, err := inst.Exec("insert into SUPPLIER values (20, 1), (21, 2)")
	if err != nil || res.Affected != 2 {
		t.Fatalf("insert: %+v %v", res, err)
	}
	sel, err := inst.Exec(
		"select S.suppkey from SUPPLIER S, NATION N where S.nationkey = N.nationkey and N.name = 'GERMANY'")
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Result.Rows) != 3 || !sel.Stats.ScanFree {
		t.Fatalf("select after insert: %v", sel.Result.Rows)
	}
	// DELETE with predicates (qualified and bare columns both work).
	res, err = inst.Exec("delete from SUPPLIER where SUPPLIER.nationkey = 1 and suppkey >= 20")
	if err != nil || res.Affected != 1 {
		t.Fatalf("delete: %+v %v", res, err)
	}
	sel, _ = inst.Exec(
		"select S.suppkey from SUPPLIER S, NATION N where S.nationkey = N.nationkey and N.name = 'GERMANY'")
	if len(sel.Result.Rows) != 2 {
		t.Fatalf("after delete: %v", sel.Result.Rows)
	}
	// Errors.
	for _, src := range []string{
		"delete from NOPE",
		"delete from SUPPLIER where bogus = 1",
		"delete from SUPPLIER where NATION.name = 'x'",
		"insert into NOPE values (1)",
		"not sql at all",
	} {
		if _, err := inst.Exec(src); err == nil {
			t.Fatalf("expected error for %q", src)
		}
	}
}

func TestFacadePrepare(t *testing.T) {
	inst := facadeInstance(t)
	src := "select S.suppkey from SUPPLIER S, NATION N where S.nationkey = N.nationkey and N.name = 'GERMANY'"
	p, err := inst.Prepare(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.SQL() != src || !p.ScanFree() || !strings.Contains(p.Plan(), "∝") {
		t.Fatalf("prepared = %q scanfree=%v plan=%q", p.SQL(), p.ScanFree(), p.Plan())
	}
	// A prepared statement is reusable and must agree with Query every time.
	want, _, err := inst.Query(src)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		res, stats, err := p.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !res.Equal(want) {
			t.Fatalf("run %d: %v != %v", i, res.Rows, want.Rows)
		}
		if !stats.ScanFree || stats.Gets == 0 {
			t.Fatalf("run %d stats = %+v", i, stats)
		}
	}
	if _, err := inst.Prepare("select nothing from NOWHERE"); err == nil {
		t.Fatal("expected error preparing over unknown relation")
	}
}

// TestFacadePrepareConcurrent runs one compiled plan from many goroutines;
// under -race this checks the plan-reuse path the serving layer depends on.
func TestFacadePrepareConcurrent(t *testing.T) {
	inst := facadeInstance(t)
	p, err := inst.Prepare(
		"select S.suppkey from SUPPLIER S, NATION N where S.nationkey = N.nationkey and N.name = 'GERMANY'")
	if err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 20; i++ {
				res, _, err := p.Run()
				if err != nil {
					errs <- err
					return
				}
				if len(res.Rows) != 2 {
					errs <- fmt.Errorf("rows = %v", res.Rows)
					return
				}
			}
			errs <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

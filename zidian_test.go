package zidian

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// facadeDB builds the paper's Example 1 database through the public API.
func facadeDB(t *testing.T) *Database {
	t.Helper()
	db := NewDatabase()
	nation := NewRelation(MustRelSchema("NATION",
		[]Attr{{Name: "nationkey", Kind: KindInt}, {Name: "name", Kind: KindString}},
		[]string{"nationkey"}))
	nation.MustInsert(Tuple{Int(1), String("GERMANY")})
	nation.MustInsert(Tuple{Int(2), String("FRANCE")})
	db.Add(nation)
	supplier := NewRelation(MustRelSchema("SUPPLIER",
		[]Attr{{Name: "suppkey", Kind: KindInt}, {Name: "nationkey", Kind: KindInt}},
		[]string{"suppkey"}))
	supplier.MustInsert(Tuple{Int(10), Int(1)})
	supplier.MustInsert(Tuple{Int(11), Int(1)})
	supplier.MustInsert(Tuple{Int(12), Int(2)})
	db.Add(supplier)
	return db
}

func facadeInstance(t *testing.T) *Instance {
	t.Helper()
	db := facadeDB(t)
	schema, err := NewBaaVSchema(db,
		KVSchema{Name: "nation_by_name", Rel: "NATION", Key: []string{"name"}, Val: []string{"nationkey"}},
		KVSchema{Name: "supplier_by_nation", Rel: "SUPPLIER", Key: []string{"nationkey"}, Val: []string{"suppkey"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := Open(db, schema, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestFacadeQuery(t *testing.T) {
	inst := facadeInstance(t)
	res, stats, err := inst.Query(
		"select S.suppkey from SUPPLIER S, NATION N where S.nationkey = N.nationkey and N.name = 'GERMANY'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if !stats.ScanFree || !stats.Bounded {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.Gets == 0 || stats.Plan == "" {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestFacadeExplain(t *testing.T) {
	inst := facadeInstance(t)
	plan, err := inst.Explain(
		"select S.suppkey from SUPPLIER S, NATION N where S.nationkey = N.nationkey and N.name = 'GERMANY'")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "scan-free") || !strings.Contains(plan, "∝") {
		t.Fatalf("explain = %s", plan)
	}
	plan, err = inst.Explain("select S.suppkey from SUPPLIER S")
	if err != nil || !strings.Contains(plan, "not scan-free") {
		t.Fatalf("explain = %s err=%v", plan, err)
	}
	plan, err = inst.Explain("select S.suppkey from SUPPLIER S where S.nationkey = 1 and S.nationkey = 2")
	if err != nil || !strings.Contains(plan, "empty") {
		t.Fatalf("explain = %s err=%v", plan, err)
	}
	if _, err := inst.Explain("not sql"); err == nil {
		t.Fatal("bad SQL must error")
	}
}

func TestFacadeMaintenance(t *testing.T) {
	inst := facadeInstance(t)
	if err := inst.Insert("SUPPLIER", Tuple{Int(13), Int(1)}); err != nil {
		t.Fatal(err)
	}
	res, _, err := inst.Query(
		"select S.suppkey from SUPPLIER S, NATION N where S.nationkey = N.nationkey and N.name = 'GERMANY'")
	if err != nil || len(res.Rows) != 3 {
		t.Fatalf("after insert: %v %v", res, err)
	}
	if err := inst.Delete("SUPPLIER", Tuple{Int(13), Int(1)}); err != nil {
		t.Fatal(err)
	}
	res, _, _ = inst.Query(
		"select S.suppkey from SUPPLIER S, NATION N where S.nationkey = N.nationkey and N.name = 'GERMANY'")
	if len(res.Rows) != 2 {
		t.Fatalf("after delete: %v", res.Rows)
	}
	if err := inst.Insert("NOPE", Tuple{}); err == nil {
		t.Fatal("unknown relation")
	}
	if err := inst.Delete("NOPE", Tuple{}); err == nil {
		t.Fatal("unknown relation")
	}
	// Deleting a missing tuple is a no-op.
	if err := inst.Delete("SUPPLIER", Tuple{Int(99), Int(9)}); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeDataPreserving(t *testing.T) {
	inst := facadeInstance(t)
	ok, missing := inst.DataPreserving()
	if !ok || len(missing) != 0 {
		t.Fatalf("ok=%v missing=%v", ok, missing)
	}
	sf, err := inst.ScanFree("select N.nationkey from NATION N where N.name = 'FRANCE'")
	if err != nil || !sf {
		t.Fatalf("scan free = %v err=%v", sf, err)
	}
	if _, err := inst.ScanFree("nonsense"); err == nil {
		t.Fatal("bad SQL must error")
	}
}

func TestFacadeDesignSchema(t *testing.T) {
	db := facadeDB(t)
	schema, report, err := DesignSchema(db, []string{
		"select S.suppkey from SUPPLIER S, NATION N where S.nationkey = N.nationkey and N.name = 'GERMANY'",
	}, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if report.FinalKVs == 0 {
		t.Fatalf("report = %+v", report)
	}
	inst, err := Open(db, schema, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, stats, err := inst.Query(
		"select S.suppkey from SUPPLIER S, NATION N where S.nationkey = N.nationkey and N.name = 'GERMANY'")
	if err != nil || len(res.Rows) != 2 || !stats.ScanFree {
		t.Fatalf("designed schema: %v %+v %v", res, stats, err)
	}
	if _, _, err := DesignSchema(db, []string{"bad sql"}, 0, false); err == nil {
		t.Fatal("bad workload SQL must error")
	}
}

func TestFacadeStoreAccess(t *testing.T) {
	inst := facadeInstance(t)
	if inst.Store() == nil {
		t.Fatal("store must be exposed")
	}
	if inst.Store().Degree("supplier_by_nation") != 2 {
		t.Fatalf("degree = %d", inst.Store().Degree("supplier_by_nation"))
	}
}

func TestFacadeExec(t *testing.T) {
	inst := facadeInstance(t)
	// INSERT through SQL.
	res, err := inst.Exec("insert into SUPPLIER values (20, 1), (21, 2)")
	if err != nil || res.Affected != 2 {
		t.Fatalf("insert: %+v %v", res, err)
	}
	sel, err := inst.Exec(
		"select S.suppkey from SUPPLIER S, NATION N where S.nationkey = N.nationkey and N.name = 'GERMANY'")
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Result.Rows) != 3 || !sel.Stats.ScanFree {
		t.Fatalf("select after insert: %v", sel.Result.Rows)
	}
	// DELETE with predicates (qualified and bare columns both work).
	res, err = inst.Exec("delete from SUPPLIER where SUPPLIER.nationkey = 1 and suppkey >= 20")
	if err != nil || res.Affected != 1 {
		t.Fatalf("delete: %+v %v", res, err)
	}
	sel, _ = inst.Exec(
		"select S.suppkey from SUPPLIER S, NATION N where S.nationkey = N.nationkey and N.name = 'GERMANY'")
	if len(sel.Result.Rows) != 2 {
		t.Fatalf("after delete: %v", sel.Result.Rows)
	}
	// Errors.
	for _, src := range []string{
		"delete from NOPE",
		"delete from SUPPLIER where bogus = 1",
		"delete from SUPPLIER where NATION.name = 'x'",
		"insert into NOPE values (1)",
		"not sql at all",
	} {
		if _, err := inst.Exec(src); err == nil {
			t.Fatalf("expected error for %q", src)
		}
	}
}

func TestFacadePrepare(t *testing.T) {
	inst := facadeInstance(t)
	src := "select S.suppkey from SUPPLIER S, NATION N where S.nationkey = N.nationkey and N.name = 'GERMANY'"
	p, err := inst.Prepare(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.SQL() != src || !p.ScanFree() || !strings.Contains(p.Plan(), "∝") {
		t.Fatalf("prepared = %q scanfree=%v plan=%q", p.SQL(), p.ScanFree(), p.Plan())
	}
	// A prepared statement is reusable and must agree with Query every time.
	want, _, err := inst.Query(src)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		res, stats, err := p.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !res.Equal(want) {
			t.Fatalf("run %d: %v != %v", i, res.Rows, want.Rows)
		}
		if !stats.ScanFree || stats.Gets == 0 {
			t.Fatalf("run %d stats = %+v", i, stats)
		}
	}
	if _, err := inst.Prepare("select nothing from NOWHERE"); err == nil {
		t.Fatal("expected error preparing over unknown relation")
	}
}

// TestFacadePrepareConcurrent runs one compiled plan from many goroutines;
// under -race this checks the plan-reuse path the serving layer depends on.
func TestFacadePrepareConcurrent(t *testing.T) {
	inst := facadeInstance(t)
	p, err := inst.Prepare(
		"select S.suppkey from SUPPLIER S, NATION N where S.nationkey = N.nationkey and N.name = 'GERMANY'")
	if err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 20; i++ {
				res, _, err := p.Run()
				if err != nil {
					errs <- err
					return
				}
				if len(res.Rows) != 2 {
					errs <- fmt.Errorf("rows = %v", res.Rows)
					return
				}
			}
			errs <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// indexInstance builds an instance big enough that the cost model prefers
// the index over the scan: 400 vehicles across 20 makes, stored only under
// a primary-key KV schema so a make predicate has no keyed access path.
func indexInstance(t *testing.T) *Instance {
	t.Helper()
	db := NewDatabase()
	vehicle := NewRelation(MustRelSchema("VEHICLE",
		[]Attr{
			{Name: "vehicle_id", Kind: KindInt},
			{Name: "make", Kind: KindString},
			{Name: "model", Kind: KindString},
			{Name: "year", Kind: KindInt},
		},
		[]string{"vehicle_id"}))
	for i := 0; i < 400; i++ {
		vehicle.MustInsert(Tuple{
			Int(int64(i)),
			String(fmt.Sprintf("MAKE-%02d", i%20)),
			String(fmt.Sprintf("MODEL-%03d", i%37)),
			Int(int64(2000 + i%20)),
		})
	}
	db.Add(vehicle)
	schema, err := NewBaaVSchema(db, KVSchema{
		Name: "vehicle_full", Rel: "VEHICLE",
		Key: []string{"vehicle_id"}, Val: []string{"make", "model", "year"},
	})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := Open(db, schema, Options{Nodes: 3, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func sortedRows(res *Result) []string {
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = r.String()
	}
	sort.Strings(out)
	return out
}

// TestFacadeSecondaryIndex walks the whole index lifecycle through SQL:
// scan plan before DDL, IndexLookup plan after, bit-for-bit identical
// answers under insert/delete churn, and the scan plan again after DROP.
func TestFacadeSecondaryIndex(t *testing.T) {
	inst := indexInstance(t)
	const q = "select V.vehicle_id, V.model from VEHICLE V where V.make = 'MAKE-07'"

	plan, err := inst.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plan, "IndexLookup") {
		t.Fatalf("IndexLookup before CREATE INDEX: %s", plan)
	}
	scanRes, scanStats, err := inst.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if scanStats.ScanFree || len(scanRes.Rows) != 20 {
		t.Fatalf("scan baseline: %d rows, scanFree=%v", len(scanRes.Rows), scanStats.ScanFree)
	}

	res, err := inst.Exec("create index ix_make on VEHICLE(make)")
	if err != nil {
		t.Fatal(err)
	}
	if !res.SchemaChanged || res.Affected != 400 {
		t.Fatalf("create index result: %+v", res)
	}
	if inst.SchemaEpoch() != 1 {
		t.Fatalf("epoch = %d after one DDL", inst.SchemaEpoch())
	}
	if names := inst.IndexNames(); len(names) != 1 || names[0] != "ix_make" {
		t.Fatalf("IndexNames = %v", names)
	}
	if st, ok := inst.IndexStats("ix_make"); !ok || st.Entries != 20 || st.Postings != 400 {
		t.Fatalf("IndexStats = %+v %v", st, ok)
	}

	plan, err = inst.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "IndexLookup") || !strings.Contains(plan, "index-assisted") {
		t.Fatalf("post-DDL plan: %s", plan)
	}
	idxRes, idxStats, err := inst.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !idxStats.ScanFree {
		t.Fatalf("index plan not scan-free: %+v", idxStats)
	}
	if got, want := sortedRows(idxRes), sortedRows(scanRes); !reflect.DeepEqual(got, want) {
		t.Fatalf("index answer diverges:\n got %v\nwant %v", got, want)
	}

	// Churn: inserts and deletes must keep index and scan answers in
	// lockstep (the index is dropped and recreated to obtain the scan
	// reference at each step — its absence forces the scan plan).
	if _, err := inst.Exec("insert into VEHICLE values (900, 'MAKE-07', 'MODEL-900', 2024), (901, 'MAKE-07', 'MODEL-901', 2025), (902, 'MAKE-01', 'MODEL-902', 2025)"); err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Exec("delete from VEHICLE where vehicle_id = 7"); err != nil {
		t.Fatal(err)
	}
	idxRes, _, err = inst.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Exec("drop index ix_make"); err != nil {
		t.Fatal(err)
	}
	scanRes, scanStats, err = inst.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if scanStats.ScanFree {
		t.Fatal("scan reference unexpectedly scan-free after DROP INDEX")
	}
	if len(scanRes.Rows) != 21 { // 20 - 1 deleted + 2 inserted
		t.Fatalf("churned rows = %d", len(scanRes.Rows))
	}
	if got, want := sortedRows(idxRes), sortedRows(scanRes); !reflect.DeepEqual(got, want) {
		t.Fatalf("index answer diverges under churn:\n got %v\nwant %v", got, want)
	}
	if inst.SchemaEpoch() != 2 {
		t.Fatalf("epoch = %d after two DDLs", inst.SchemaEpoch())
	}

	// DDL error paths.
	for _, src := range []string{
		"create index ix2 on NOPE(make)",
		"create index ix2 on VEHICLE(nope)",
		"drop index ix_make", // already dropped
	} {
		if _, err := inst.Exec(src); err == nil {
			t.Fatalf("expected error for %q", src)
		}
	}
}

// TestFacadeExplainStatement: EXPLAIN <select> through Exec returns the
// plan as a one-row result.
func TestFacadeExplainStatement(t *testing.T) {
	inst := indexInstance(t)
	if _, err := inst.Exec("create index ix_make on VEHICLE(make)"); err != nil {
		t.Fatal(err)
	}
	res, err := inst.Exec("EXPLAIN select V.vehicle_id from VEHICLE V where V.make = 'MAKE-03'")
	if err != nil {
		t.Fatal(err)
	}
	if res.Result == nil || len(res.Result.Rows) != 1 || len(res.Result.Cols) != 1 {
		t.Fatalf("explain result = %+v", res)
	}
	if plan := res.Result.Rows[0][0].Str; !strings.Contains(plan, "IndexLookup") {
		t.Fatalf("explain plan = %q", plan)
	}
}

// TestFacadePreparedEpoch: a Prepared records its compilation epoch and
// keeps executing after DDL (the plan stays valid when its access paths
// survive), while the epoch mismatch signals that recompilation would help.
func TestFacadePreparedEpoch(t *testing.T) {
	inst := indexInstance(t)
	const q = "select V.vehicle_id, V.model from VEHICLE V where V.make = 'MAKE-05'"
	p, err := inst.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	if p.Epoch() != inst.SchemaEpoch() {
		t.Fatalf("fresh statement epoch %d != instance %d", p.Epoch(), inst.SchemaEpoch())
	}
	if _, err := inst.Exec("create index ix_make on VEHICLE(make)"); err != nil {
		t.Fatal(err)
	}
	if p.Epoch() == inst.SchemaEpoch() {
		t.Fatal("DDL did not advance the instance epoch past the statement's")
	}
	// The stale scan plan still answers correctly.
	res, _, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := inst.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	res2, _, err := p2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sortedRows(res), sortedRows(res2)) {
		t.Fatal("stale and fresh plans disagree")
	}
	if !p2.ScanFree() || !strings.Contains(p2.Plan(), "IndexLookup") {
		t.Fatalf("recompiled plan = %s", p2.Plan())
	}
	// A plan whose index is dropped must fail loudly, not silently return
	// wrong answers — the serving layer recompiles on epoch mismatch.
	if _, err := inst.Exec("drop index ix_make"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := p2.Run(); err == nil {
		t.Fatal("plan over a dropped index ran without error")
	}
}

// Package zidian is a Go implementation of Zidian, the middleware for
// SQL-over-NoSQL systems from "Block as a Value for SQL over NoSQL"
// (Cao, Fan, Yuan — PVLDB 12(10), 2019).
//
// Zidian replaces the conventional tuple-as-a-value (TaaV) representation
// of relations in key-value stores with a block-as-a-value model (BaaV):
// relations are stored as keyed blocks ⟨X, Y⟩ where arbitrary attributes X
// key blocks of partial tuples over Y. On top of BaaV, Zidian decides
// whether a SQL query can be answered at all (result preservation), whether
// it can be answered without scanning any table (scan-freeness), and
// whether it touches a bounded amount of data regardless of database size
// (boundedness) — and generates KBA plans with those guarantees.
//
// The package exposes a small facade over the internal packages:
//
//	db := zidian.NewDatabase()             // build relations
//	schema, _, _ := zidian.DesignSchema(db, workloadSQL, 0, true)
//	inst, _ := zidian.Open(db, schema, zidian.Options{})
//	res, stats, _ := inst.Query("select ... where k = 1")
//	// stats.ScanFree, stats.Gets, stats.DataValues ...
package zidian

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"zidian/internal/baav"
	"zidian/internal/core"
	"zidian/internal/index"
	"zidian/internal/kba"
	"zidian/internal/kv"
	"zidian/internal/obs"
	"zidian/internal/parallel"
	"zidian/internal/qcs"
	"zidian/internal/ra"
	"zidian/internal/relation"
	sqlpkg "zidian/internal/sql"
)

// Re-exported building blocks of the relational substrate.
type (
	// Database is an in-memory relational database.
	Database = relation.Database
	// RelSchema describes one relation.
	RelSchema = relation.Schema
	// Attr is a named, typed attribute.
	Attr = relation.Attr
	// Tuple is a row of values.
	Tuple = relation.Tuple
	// Value is a dynamically typed SQL value.
	Value = relation.Value
	// Result is a materialized query answer.
	Result = ra.Result
	// BaaVSchema is a set of KV schemas ~R⟨X,Y⟩.
	BaaVSchema = baav.Schema
	// KVSchema is one KV schema ~R⟨X,Y⟩.
	KVSchema = baav.KVSchema
	// DesignReport records what the T2B schema designer did.
	DesignReport = qcs.Report
)

// Value constructors, re-exported.
var (
	Int    = relation.Int
	Float  = relation.Float
	String = relation.String
	Null   = relation.Null
)

// Attribute kinds, re-exported.
const (
	KindInt    = relation.KindInt
	KindFloat  = relation.KindFloat
	KindString = relation.KindString
)

// NewDatabase returns an empty database.
func NewDatabase() *Database { return relation.NewDatabase() }

// NewRelation returns an empty relation over the schema.
func NewRelation(s *RelSchema) *relation.Relation { return relation.NewRelation(s) }

// MustRelSchema builds a relation schema, panicking on error.
func MustRelSchema(name string, attrs []Attr, key []string) *RelSchema {
	return relation.MustSchema(name, attrs, key)
}

// NewBaaVSchema validates a BaaV schema against a database's relations.
func NewBaaVSchema(db *Database, kvs ...KVSchema) (*BaaVSchema, error) {
	return baav.NewSchema(baav.RelSchemas(db), kvs...)
}

// Options configure an Instance.
type Options struct {
	// Engine selects the storage-node engine kind: "hash" (default, the
	// Cassandra-style partition store), "lsm" (HBase-style), or "sorted"
	// (Kudu-style). Benchmarks and differential tests use it to run the
	// same instance shape over all three engines.
	Engine string
	// Nodes is the number of storage nodes (default 4).
	Nodes int
	// Workers is the SQL-layer parallelism (default 4).
	Workers int
	// MaxBoundedDegree is the block-degree bound used to classify bounded
	// queries (default 1024).
	MaxBoundedDegree int
	// Store tunes segmentation, compression and statistics.
	Store baav.Options
}

func (o Options) normalized() Options {
	if o.Nodes <= 0 {
		o.Nodes = 4
	}
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.MaxBoundedDegree <= 0 {
		o.MaxBoundedDegree = 1024
	}
	if o.Store.SegmentThreshold == 0 {
		o.Store = baav.DefaultOptions()
	}
	return o
}

// Stats describes one query execution.
type Stats struct {
	// ScanFree reports whether the plan scanned no KV instance.
	ScanFree bool
	// Bounded reports whether the query is bounded on this store under the
	// instance's degree bound.
	Bounded bool
	// Gets counts get invocations against the store.
	Gets int64
	// DataValues counts values fetched from the store (#data).
	DataValues int64
	// ShuffleBytes counts worker-to-worker communication.
	ShuffleBytes int64
	// Wall is the execution wall time.
	Wall time.Duration
	// Plan is the KBA plan rendering.
	Plan string
}

// Instance is an opened Zidian deployment: a database mapped to a BaaV
// store on an in-process KV cluster.
type Instance struct {
	db      *Database
	schema  *BaaVSchema
	store   *baav.Store
	checker *core.Checker
	indexes *index.Manager
	opts    Options

	// epoch counts catalog-changing DDL (CREATE INDEX / DROP INDEX). Plans
	// compiled at an older epoch may be stale: an index they use can be
	// gone, or a better access path can exist. Serving layers key their
	// plan caches on it.
	epoch atomic.Uint64

	// committers hold the per-relation group-commit queues (commit.go).
	// The relation set is fixed at Open, so the map is read-only after.
	committers map[string]*committer
	// onCommit, when set, observes every installed group commit with its
	// batch size; the server feeds its batch-size histogram from it.
	onCommit atomic.Pointer[func(batch int)]
}

// engineKind maps the Options.Engine name to the kv engine kind.
func engineKind(name string) (kv.EngineKind, error) {
	switch name {
	case "", "hash":
		return kv.EngineHash, nil
	case "lsm":
		return kv.EngineLSM, nil
	case "sorted":
		return kv.EngineSorted, nil
	default:
		return 0, fmt.Errorf("zidian: unknown engine %q (want hash, lsm or sorted)", name)
	}
}

// Open maps db onto the BaaV schema and returns a queryable instance.
func Open(db *Database, schema *BaaVSchema, opts Options) (*Instance, error) {
	opts = opts.normalized()
	kind, err := engineKind(opts.Engine)
	if err != nil {
		return nil, err
	}
	cluster := kv.NewCluster(kind, opts.Nodes)
	store, err := baav.Map(db, schema, cluster, opts.Store)
	if err != nil {
		return nil, err
	}
	idx := index.NewManager(cluster)
	store.Index = idx
	in := &Instance{
		db:      db,
		schema:  schema,
		store:   store,
		checker: core.NewChecker(schema, baav.RelSchemas(db)).WithStats(store).WithIndexes(idx),
		indexes: idx,
		opts:    opts,
	}
	in.committers = make(map[string]*committer, len(db.Names()))
	for _, rel := range db.Names() {
		in.committers[rel] = newCommitter(in, rel)
	}
	return in, nil
}

// SetCommitObserver registers f to be called with the batch size of every
// installed group commit (nil unregisters). Serving layers feed their
// commit-batch-size histogram from it.
func (in *Instance) SetCommitObserver(f func(batch int)) {
	if f == nil {
		in.onCommit.Store(nil)
		return
	}
	in.onCommit.Store(&f)
}

// CommitSeq returns rel's installed MVCC commit sequence — it advances by
// one per group commit, regardless of how many statements the batch folded.
func (in *Instance) CommitSeq(rel string) uint64 { return in.store.CommitSeq(rel) }

// MVCCVersions reports the store-wide number of live block versions and
// the total reclaimed since open.
func (in *Instance) MVCCVersions() (live, reclaimed int64) {
	return in.store.VersionsLive(), in.store.VersionsReclaimed()
}

// MVCCSwept reports the block versions reclaimed by the background sweep —
// a subset of the reclaimed total, counting only what SweepMVCC dropped on
// relations between commits.
func (in *Instance) MVCCSwept() int64 { return in.store.VersionsSwept() }

// SweepMVCC runs one reclamation pass over every relation: retired block
// versions and sole tombstones below each relation's watermark are
// dropped, and pending posting shrinks are retried against the same
// watermark — work that normally rides the relation's next commit, done
// now for relations that stopped receiving commits. Relations mid-commit
// are skipped (the commit reclaims on its own way out). Returns the number
// of versions swept.
func (in *Instance) SweepMVCC() int64 {
	var total int64
	for _, rel := range in.db.Names() {
		rel := rel
		swept, ok := in.store.SweepRelation(rel, func(w uint64) {
			// A failed shrink (corrupt posting) stays pending; the next
			// sweep or commit retries it, exactly like the commit path.
			_ = in.indexes.ReclaimRemovals(nil, rel, w)
		})
		if ok {
			total += int64(swept)
		}
	}
	return total
}

// StartReclaimSweeper starts a low-frequency background ticker that calls
// SweepMVCC, so retired versions on quiescent relations are reclaimed
// without waiting for a next commit. A non-positive interval defaults to
// 5s. The returned stop function halts the sweeper and waits for an
// in-flight pass to finish; it is idempotent.
func (in *Instance) StartReclaimSweeper(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				in.SweepMVCC()
			}
		}
	}()
	var stopped atomic.Bool
	return func() {
		if stopped.CompareAndSwap(false, true) {
			close(done)
			<-finished
		}
	}
}

// submitWrite queues one logical write on rel's group committer and waits
// for its batch to install (or abort).
func (in *Instance) submitWrite(rel string, op *writeOp) writeOutcome {
	co := in.committers[rel]
	if co == nil {
		return writeOutcome{err: fmt.Errorf("zidian: unknown relation %q", rel)}
	}
	return co.submit(op)
}

// SchemaEpoch returns the instance's catalog epoch; it advances on every
// successful CREATE INDEX / DROP INDEX. Compiled plans record the epoch
// they were built at, so caches can drop plans from older epochs.
func (in *Instance) SchemaEpoch() uint64 { return in.epoch.Load() }

// IndexNames lists the defined secondary indexes, sorted.
func (in *Instance) IndexNames() []string { return in.indexes.Names() }

// Relations lists the base relations of the opened database, sorted. The
// set is fixed at open time; serving layers size their per-relation lock
// tables from it and reject write targets outside it.
func (in *Instance) Relations() []string {
	names := append([]string{}, in.db.Names()...)
	sort.Strings(names)
	return names
}

// IndexStats snapshots the named index's shape statistics.
func (in *Instance) IndexStats(name string) (index.Stats, bool) { return in.indexes.StatsOf(name) }

// Store exposes the underlying BaaV store for advanced use.
func (in *Instance) Store() *baav.Store { return in.store }

// Query parses, plans and executes a SQL query in parallel over the BaaV
// store, returning the answer and execution statistics. The statement may
// contain `?` placeholders, bound positionally by params. Each call
// recompiles the plan from scratch; callers that repeat a statement shape
// should Prepare the `?` template once and Run it many times with different
// bindings (or sit behind a serving layer with a plan cache).
func (in *Instance) Query(src string, params ...Value) (*Result, *Stats, error) {
	p, err := in.Prepare(src)
	if err != nil {
		return nil, nil, err
	}
	return p.Run(params...)
}

// Prepared is a compiled query: parsed, minimized, checked and planned once,
// executable many times. A statement with `?` placeholders compiles into a
// plan template: the planner fixes the access paths from the template's
// shape, and each Run binds a fresh parameter list into the template
// (validating arity and types) without re-parsing, re-checking or
// re-planning — one compiled plan serves every literal of the statement
// shape. A Prepared is immutable after Prepare and safe for concurrent Run
// calls from multiple goroutines; binding copies the few parameterized plan
// nodes and shares the rest. Plans depend on the relational and BaaV
// schemas and the index catalog, not on the stored data, so a Prepared
// stays valid across Insert/Delete maintenance; DDL (CREATE/DROP INDEX)
// advances the instance's SchemaEpoch, and statements compiled at an older
// epoch should be recompiled (see Epoch).
type Prepared struct {
	in    *Instance
	info  *core.PlanInfo
	src   string
	epoch uint64
	// planText is the template plan rendered once at Prepare: per-query
	// Stats reuse it instead of re-rendering the operator tree on every
	// execution (the rendering was a top allocator under load).
	planText string
}

// Prepare parses, checks and plans a SQL query without executing it. The
// returned statement amortizes the parse/check/plan cost — the hot path for
// repeated queries — across any number of Run calls.
func (in *Instance) Prepare(src string) (*Prepared, error) {
	q, err := ra.Parse(src, in.db)
	if err != nil {
		return nil, err
	}
	epoch := in.epoch.Load()
	info, err := in.checker.Plan(q)
	if err != nil {
		return nil, err
	}
	planText := ""
	if info.Root != nil {
		planText = info.Root.String()
	}
	return &Prepared{in: in, info: info, src: src, epoch: epoch, planText: planText}, nil
}

// SQL returns the statement's source text.
func (p *Prepared) SQL() string { return p.src }

// NumParams returns the number of `?` placeholders the statement carries;
// Run must be given exactly that many values.
func (p *Prepared) NumParams() int {
	if p == nil || p.info == nil {
		return 0
	}
	return p.info.NumParams
}

// Epoch returns the catalog epoch the statement was compiled at. When it
// trails the instance's SchemaEpoch, DDL has run since compilation and the
// plan should be recompiled: it may reference a dropped index or miss a
// newly available one.
func (p *Prepared) Epoch() uint64 { return p.epoch }

// ScanFree reports whether the compiled plan scans no KV instance.
func (p *Prepared) ScanFree() bool { return p.info.ScanFree }

// Relations lists the base relations the compiled plan reads, sorted and
// deduplicated. Every block, index posting, and statistic the plan touches
// belongs to one of them, so a serving layer that holds these relations'
// read locks runs the statement concurrently with writes to any other
// relation.
func (p *Prepared) Relations() []string {
	if p == nil || p.info == nil {
		return nil
	}
	return append([]string{}, p.info.Relations...)
}

// Plan renders the compiled KBA plan (empty for statically empty queries).
func (p *Prepared) Plan() string { return p.planText }

// Run executes the prepared plan in parallel over the BaaV store, binding
// params into the plan template first (a statement without placeholders
// takes no params). Binding validates arity and per-slot types and injects
// the values into the compiled plan — the statement is never re-planned. It
// is safe to call concurrently; each call binds its own copy of the
// parameterized nodes.
func (p *Prepared) Run(params ...Value) (*Result, *Stats, error) {
	return p.RunTraced(nil, params...)
}

// RunTraced is Run with a per-statement trace: when t is non-nil the
// executor records one operator span per plan node (rows, wall time,
// inclusive kv-op deltas, worker fan-out) into t.Root and counts kv ops,
// posting reads and block fetches into t's counters. A nil trace costs
// nothing; Run is RunTraced(nil).
func (p *Prepared) RunTraced(t *obs.Trace, params ...Value) (*Result, *Stats, error) {
	in := p.in
	info, err := p.info.Bind(params)
	if err != nil {
		return nil, nil, err
	}
	view, release := in.pinView(p.info.Relations, t)
	defer release()
	res, m, err := parallel.RunKBATraced(info, view, in.opts.Workers, t)
	if err != nil {
		return nil, nil, err
	}
	stats := in.statsFor(info, m)
	stats.Plan = p.planText
	return res, stats, nil
}

// pinView pins an MVCC snapshot over the statement's relations and returns
// the store view the executor should run against: block and posting reads
// resolve at the pinned sequences, without taking any relation lock, and
// concurrent group commits stay invisible until the snapshot is released.
// The pinned sequences are recorded on the trace when one is given.
func (in *Instance) pinView(rels []string, t *obs.Trace) (*baav.Store, func()) {
	snap := in.store.PinSnapshot(rels)
	view := in.store.AtSnapshot(snap)
	view.Index = &snapshotIndex{in: in, snap: snap.Seqs}
	if t != nil {
		t.SnapshotSeqs = snap.Seqs
	}
	return view, snap.Release
}

// statsFor shapes executor metrics into the facade's per-query Stats. The
// caller attaches the plan rendering (Prepared keeps its template rendered
// once; EXPLAIN ANALYZE renders the bound tree).
func (in *Instance) statsFor(info *core.PlanInfo, m *parallel.Metrics) *Stats {
	return &Stats{
		ScanFree:     info.ScanFree,
		Bounded:      info.Bounded(in.store, in.opts.MaxBoundedDegree),
		Gets:         m.Gets,
		DataValues:   m.DataValues,
		ShuffleBytes: m.ShuffleBytes,
		Wall:         m.Wall,
	}
}

// Analyze is EXPLAIN ANALYZE as a prepared-statement method: it executes
// the statement under a trace and returns, in place of the query answer, the
// annotated plan rendering — one "plan" row per line: the classification
// headline, the operator tree with measured rows/time/kv-ops per node, and a
// statement-wide totals line. A non-nil t is used as the statement trace (a
// serving layer passes its own so queue and lock waits land in the same
// counters); nil allocates a fresh one. Stats are those of the execution.
func (p *Prepared) Analyze(t *obs.Trace, params ...Value) (*Result, *Stats, *obs.Trace, error) {
	return p.in.analyzeInfo(t, p.info, params)
}

// analyzeInfo binds and executes a compiled plan under a trace and renders
// the annotated operator tree.
func (in *Instance) analyzeInfo(t *obs.Trace, info *core.PlanInfo, params []Value) (*Result, *Stats, *obs.Trace, error) {
	if t == nil {
		t = &obs.Trace{}
	}
	if info.Empty {
		res := planLinesResult([]string{"empty result (unsatisfiable constants)"})
		return res, &Stats{}, t, nil
	}
	bound, err := info.Bind(params)
	if err != nil {
		return nil, nil, nil, err
	}
	view, release := in.pinView(info.Relations, t)
	defer release()
	ans, m, err := parallel.RunKBATraced(bound, view, in.opts.Workers, t)
	if err != nil {
		return nil, nil, nil, err
	}
	kvs := t.KV.Snapshot()
	lines := []string{fmt.Sprintf("[%s] %s", in.planClass(info), info.Root)}
	lines = append(lines, obs.RenderPlan(t.Root, true)...)
	lines = append(lines, fmt.Sprintf(
		"totals: rows=%d wall=%s kv_ops=%d (gets=%d scan_next=%d puts=%d deletes=%d) rtt=%s posting_reads=%d blocks=%d nodes=%d snapshot=%s",
		len(ans.Rows), m.Wall, kvs.Ops(), kvs.Gets, kvs.ScanNexts, kvs.Puts, kvs.Deletes,
		time.Duration(kvs.WaitNanos), t.PostingReads(), t.Blocks(),
		in.store.Cluster.NodeCount(), RenderSnapshotSeqs(t.SnapshotSeqs)))
	stats := in.statsFor(bound, m)
	if bound.Root != nil {
		stats.Plan = bound.Root.String()
	}
	return planLinesResult(lines), stats, t, nil
}

// planLinesResult shapes rendered plan lines as a one-column result.
func planLinesResult(lines []string) *Result {
	rows := make([]Tuple, len(lines))
	for i, l := range lines {
		rows[i] = Tuple{String(l)}
	}
	return &Result{Cols: []string{"plan"}, Rows: rows}
}

// Execute is Run under the name conventional for prepared statements.
func (p *Prepared) Execute(params ...Value) (*Result, *Stats, error) {
	return p.Run(params...)
}

// Explain plans the query without running it and describes the plan and its
// classification.
func (in *Instance) Explain(src string) (string, error) {
	q, err := ra.Parse(src, in.db)
	if err != nil {
		return "", err
	}
	desc, _, err := in.explainQuery(q)
	return desc, err
}

// explainQuery plans a bound query, returning the rendered description and
// the plan's base-relation read set. The first line is the classification
// headline with the compact plan expression; the lines below are the same
// operator tree EXPLAIN ANALYZE annotates, unannotated.
func (in *Instance) explainQuery(q *ra.Query) (string, []string, error) {
	info, err := in.checker.Plan(q)
	if err != nil {
		return "", nil, err
	}
	rels := append([]string{}, info.Relations...)
	if info.Empty {
		return "empty result (unsatisfiable constants)", rels, nil
	}
	lines := []string{fmt.Sprintf("[%s] %s", in.planClass(info), info.Root)}
	lines = append(lines, obs.RenderPlan(kba.PlanTree(info.Root), false)...)
	return strings.Join(lines, "\n"), rels, nil
}

// planClass names a compiled plan's classification for EXPLAIN headlines:
// scan-freeness, boundedness under the instance's degree bound, and the
// index access paths it uses.
func (in *Instance) planClass(info *core.PlanInfo) string {
	kind := "not scan-free"
	if info.ScanFree {
		kind = "scan-free"
		if info.Bounded(in.store, in.opts.MaxBoundedDegree) {
			kind = "scan-free, bounded"
		}
	}
	if len(info.Indexes) > 0 {
		kind += ", index-assisted"
	}
	if len(info.Ranges) > 0 {
		kind += ", index-range"
	}
	return kind
}

// Insert maintains the BaaV store and every secondary index on the
// relation for one inserted tuple through the relation's group committer:
// blocks and postings change in one commit, so readers admitted at the new
// sequence see a consistent pair, and readers pinned below it see neither.
//
// The three stores move together or not at all — structurally, not by
// compensation: every fallible step (validation, block and posting reads,
// decoding) happens while staging, before anything is written, and a
// staging failure aborts the whole batch with the relation rolled back.
func (in *Instance) Insert(rel string, t Tuple) error { return in.insertT(nil, rel, t) }

// insertT is Insert with an optional kv-op counter sink for traced writes.
func (in *Instance) insertT(kvt *obs.KV, rel string, t Tuple) error {
	return in.submitWrite(rel, &writeOp{insertRows: []Tuple{t}, kvt: kvt}).err
}

// Delete maintains the BaaV store and every secondary index on the
// relation for one deleted tuple, through the same group committer as
// Insert and with the same all-or-nothing staging discipline. Deleting a
// tuple the relation does not hold is a no-op, not an error.
func (in *Instance) Delete(rel string, t Tuple) error { return in.deleteT(nil, rel, t) }

// deleteT is Delete with an optional kv-op counter sink for traced writes.
func (in *Instance) deleteT(kvt *obs.KV, rel string, t Tuple) error {
	return in.submitWrite(rel, &writeOp{deleteTuple: &t, kvt: kvt}).err
}

// DataPreserving checks Condition (I) for the instance's schema; when it
// holds, the BaaV store alone can answer any query and the base TaaV store
// can be dropped.
func (in *Instance) DataPreserving() (bool, []string) {
	return in.checker.DataPreserving()
}

// ScanFree checks whether a query is scan-free over the instance's schema
// (Condition (III)) without executing it.
func (in *Instance) ScanFree(src string) (bool, error) {
	q, err := ra.Parse(src, in.db)
	if err != nil {
		return false, err
	}
	return in.checker.ScanFree(q), nil
}

// ExecResult is the outcome of Exec: a result set for SELECT and EXPLAIN,
// an affected row count for INSERT, DELETE and CREATE INDEX.
type ExecResult struct {
	// Result and Stats are set for SELECT statements (EXPLAIN sets only
	// Result).
	Result *Result
	Stats  *Stats
	// Affected is the number of rows inserted or deleted, or the number of
	// tuples backfilled by CREATE INDEX.
	Affected int
	// SchemaChanged marks catalog-changing DDL; serving layers must flush
	// plan caches when it is set (the instance's SchemaEpoch advanced).
	SchemaChanged bool
	// Relations lists the base relations the statement touched: the read
	// set for SELECT and EXPLAIN, the written relation for INSERT and
	// DELETE, the indexed relation for CREATE/DROP INDEX.
	Relations []string
}

// StmtKind classifies a SQL statement for scheduling: serving layers pick
// locks by kind before executing (readers share, writers exclude their
// target relation, DDL excludes everything).
type StmtKind int

const (
	// StmtSelect is a SELECT query: a pure read over its plan's relations.
	StmtSelect StmtKind = iota
	// StmtInsert and StmtDelete write one target relation (blocks, index
	// postings, and the relation's tuples move together).
	StmtInsert
	StmtDelete
	// StmtDDL changes the catalog (CREATE INDEX / DROP INDEX): it
	// invalidates compiled plans, so it must exclude every other statement.
	StmtDDL
	// StmtExplain plans a query without touching any data.
	StmtExplain
	// StmtExplainAnalyze plans AND executes the wrapped query, so serving
	// layers schedule it like a read: it takes the query's relation read
	// locks and runs under a statement trace.
	StmtExplainAnalyze
	// StmtShow reads serving-layer state (SHOW STATEMENTS): no data access,
	// no locks. Only a serving layer can answer it — the embedded instance
	// has no statement registry.
	StmtShow
)

// StatementInfo classifies a statement without executing it, returning its
// kind and, for INSERT/DELETE, the relation it writes. Serving layers call
// it to choose locks: reads take their plan's relation read locks, writes
// their target's write lock, DDL the global gate.
func StatementInfo(src string) (kind StmtKind, target string, err error) {
	stmt, err := sqlpkg.ParseStatement(src)
	if err != nil {
		return 0, "", err
	}
	switch s := stmt.(type) {
	case *sqlpkg.Query:
		return StmtSelect, "", nil
	case *sqlpkg.Insert:
		return StmtInsert, s.Table, nil
	case *sqlpkg.Delete:
		return StmtDelete, s.Table, nil
	case *sqlpkg.CreateIndex, *sqlpkg.DropIndex:
		return StmtDDL, "", nil
	case *sqlpkg.Explain:
		if s.Analyze {
			return StmtExplainAnalyze, "", nil
		}
		return StmtExplain, "", nil
	case *sqlpkg.Show:
		return StmtShow, "", nil
	default:
		return 0, "", fmt.Errorf("zidian: unsupported statement")
	}
}

// TrimExplainAnalyze strips a leading "EXPLAIN ANALYZE" prefix (case
// insensitive, whitespace separated) and reports whether it was present.
// Serving layers use it to compile and cache the inner SELECT under its own
// statement template, so EXPLAIN ANALYZE shares the cached plan of the
// query it wraps.
func TrimExplainAnalyze(src string) (string, bool) {
	s, ok := trimWord(strings.TrimSpace(src), "EXPLAIN")
	if !ok {
		return src, false
	}
	s, ok = trimWord(s, "ANALYZE")
	if !ok {
		return src, false
	}
	return s, true
}

// trimWord consumes one leading keyword followed by whitespace.
func trimWord(s, word string) (string, bool) {
	if len(s) <= len(word) || !strings.EqualFold(s[:len(word)], word) {
		return s, false
	}
	rest := s[len(word):]
	trimmed := strings.TrimLeft(rest, " \t\r\n")
	if trimmed == rest {
		return s, false
	}
	return trimmed, true
}

// Exec parses and runs one SQL statement: SELECT queries the BaaV store;
// INSERT and DELETE update the database and incrementally maintain the
// blocks and index postings (module M4); CREATE INDEX / DROP INDEX change
// the secondary-index catalog and advance the schema epoch; EXPLAIN
// <select> returns the plan description as a one-row result, and EXPLAIN
// ANALYZE <select> executes the query and returns the annotated operator
// tree, one row per rendered line. DELETE
// supports conjunctive predicates over the target relation's own
// attributes. SELECT, INSERT and DELETE accept `?` placeholders bound
// positionally by params; DDL does not (a placeholder there is a parse
// error, and passing params alongside DDL is rejected).
func (in *Instance) Exec(src string, params ...Value) (*ExecResult, error) {
	return in.ExecTraced(nil, src, params...)
}

// ExecTraced is Exec with a per-statement trace: SELECT records operator
// spans and kv counters into t, INSERT/DELETE count their block and posting
// maintenance kv ops, and EXPLAIN ANALYZE uses t as the execution trace. A
// nil trace costs nothing; Exec is ExecTraced(nil).
func (in *Instance) ExecTraced(t *obs.Trace, src string, params ...Value) (*ExecResult, error) {
	stmt, err := sqlpkg.ParseStatement(src)
	if err != nil {
		return nil, err
	}
	if want := sqlpkg.StatementParams(stmt); len(params) != want {
		if _, ok := stmt.(*sqlpkg.Explain); !ok {
			return nil, fmt.Errorf("zidian: statement wants %d parameters, got %d", want, len(params))
		}
	}
	switch s := stmt.(type) {
	case *sqlpkg.Query:
		p, err := in.Prepare(src)
		if err != nil {
			return nil, err
		}
		res, stats, err := p.RunTraced(t, params...)
		if err != nil {
			return nil, err
		}
		return &ExecResult{Result: res, Stats: stats, Relations: p.Relations()}, nil
	case *sqlpkg.Insert:
		rows, err := bindInsertRows(in.db, s, params)
		if err != nil {
			return nil, err
		}
		out := in.submitWrite(s.Table, &writeOp{insertRows: rows, kvt: t.KVCounters(), trace: t})
		if out.err != nil {
			return nil, out.err
		}
		return &ExecResult{Affected: out.affected, Relations: []string{s.Table}}, nil
	case *sqlpkg.Delete:
		rel := in.db.Relation(s.Table)
		if rel == nil {
			return nil, fmt.Errorf("zidian: unknown relation %q", s.Table)
		}
		check, probe, err := compileDeletePreds(rel.Schema, s, params)
		if err != nil {
			return nil, err
		}
		// The predicate is evaluated inside the committer, against the
		// relation as of this operation's slot in its batch — a doomed set
		// computed here could go stale while the op waits in the queue.
		out := in.submitWrite(s.Table, &writeOp{deleteWhere: check, deleteProbe: probe, kvt: t.KVCounters(), trace: t})
		if out.err != nil {
			return nil, out.err
		}
		return &ExecResult{Affected: out.affected, Relations: []string{s.Table}}, nil
	case *sqlpkg.CreateIndex:
		rel := in.db.Relation(s.Table)
		if rel == nil {
			return nil, fmt.Errorf("zidian: unknown relation %q", s.Table)
		}
		n, err := in.indexes.Create(s.Name, s.Table, s.Attr, rel.Schema, rel.Tuples)
		if err != nil {
			return nil, err
		}
		in.epoch.Add(1)
		return &ExecResult{Affected: n, SchemaChanged: true, Relations: []string{s.Table}}, nil
	case *sqlpkg.DropIndex:
		def, hadDef := in.indexes.DefOf(s.Name)
		if err := in.indexes.Drop(s.Name); err != nil {
			return nil, err
		}
		in.epoch.Add(1)
		r := &ExecResult{SchemaChanged: true}
		if hadDef {
			r.Relations = []string{def.Rel}
		}
		return r, nil
	case *sqlpkg.Explain:
		q, err := ra.Bind(s.Query, in.db)
		if err != nil {
			return nil, err
		}
		if s.Analyze {
			info, err := in.checker.Plan(q)
			if err != nil {
				return nil, err
			}
			rels := append([]string{}, info.Relations...)
			res, stats, _, err := in.analyzeInfo(t, info, params)
			if err != nil {
				return nil, err
			}
			return &ExecResult{Result: res, Stats: stats, Relations: rels}, nil
		}
		plan, rels, err := in.explainQuery(q)
		if err != nil {
			return nil, err
		}
		return &ExecResult{Result: &Result{
			Cols: []string{"plan"},
			Rows: []Tuple{{String(plan)}},
		}, Relations: rels}, nil
	case *sqlpkg.Show:
		return nil, fmt.Errorf("zidian: SHOW %s requires a serving layer (statement statistics live in the server, not the embedded instance)", s.What)
	default:
		return nil, fmt.Errorf("zidian: unsupported statement")
	}
}

// deleteProbe is the primary-key fast path for DELETE: when the WHERE
// clause is a conjunction of equality predicates covering exactly the
// relation's declared key, at most one tuple can match, so the committer
// probes for it directly and stops at the first hit instead of evaluating
// the compiled predicate chain over the whole relation — the dominant CPU
// cost of point deletes on large relations.
type deleteProbe struct {
	pos  []int
	vals []Value
}

// match reports whether t carries the probe's key values.
func (p *deleteProbe) match(t Tuple) bool {
	for i, at := range p.pos {
		if relation.Compare(t[at], p.vals[i]) != 0 {
			return false
		}
	}
	return true
}

// compileDeletePreds compiles a DELETE's WHERE clause against the target
// relation's schema; column references may be bare or table-qualified, and
// value positions may be `?` placeholders bound from params (validated
// against the referenced column's kind). The returned probe is non-nil for
// the key-equality form described on deleteProbe; the predicate function is
// always valid and the two agree on key-unique data.
func compileDeletePreds(schema *RelSchema, s *sqlpkg.Delete, params []Value) (func(Tuple) bool, *deleteProbe, error) {
	var preds []kba.Pred
	colName := func(c sqlpkg.Col) (string, error) {
		if c.Table != "" && c.Table != s.Table {
			return "", fmt.Errorf("zidian: DELETE predicates must reference %s, found %s", s.Table, c)
		}
		if !schema.Has(c.Name) {
			return "", fmt.Errorf("zidian: relation %s has no attribute %q", s.Table, c.Name)
		}
		return c.Name, nil
	}
	bindTo := func(pr *sqlpkg.Param, attr string) (Value, error) {
		if pr.Index < 0 || pr.Index >= len(params) {
			return Value{}, fmt.Errorf("zidian: parameter slot %d out of range (have %d)", pr.Index, len(params))
		}
		kind := relation.KindNull
		if i := schema.Index(attr); i >= 0 {
			kind = schema.Attrs[i].Kind
		}
		v, err := relation.CoerceKind(params[pr.Index], kind)
		if err != nil {
			return Value{}, fmt.Errorf("zidian: parameter %d: %w", pr.Index, err)
		}
		return v, nil
	}
	// eq tracks attr -> literal while every predicate stays a plain
	// equality; one non-equality (or a repeated attribute) disables the
	// key-probe fast path.
	eq := make(map[string]Value, len(s.Where))
	eqOK := true
	for _, p := range s.Where {
		left, err := colName(p.Left)
		if err != nil {
			return nil, nil, err
		}
		pred := kba.Pred{Attr: left, Op: p.Op, In: p.In}
		switch {
		case p.IsIn():
			// Copy before appending bound values: p.In belongs to the
			// parsed statement, which must stay reusable.
			pred.In = append([]Value{}, p.In...)
			for _, pr := range p.InParams {
				v, err := bindTo(&pr, left)
				if err != nil {
					return nil, nil, err
				}
				pred.In = append(pred.In, v)
			}
			eqOK = false
		case p.Right != nil:
			right, err := colName(*p.Right)
			if err != nil {
				return nil, nil, err
			}
			pred.RAttr = right
			eqOK = false
		case p.Param != nil:
			v, err := bindTo(p.Param, left)
			if err != nil {
				return nil, nil, err
			}
			pred.Lit = &v
		case p.Lit != nil:
			lit := *p.Lit
			pred.Lit = &lit
		}
		if pred.Lit != nil {
			if _, dup := eq[left]; dup || p.Op != sqlpkg.OpEq {
				eqOK = false
			} else {
				eq[left] = *pred.Lit
			}
		}
		preds = append(preds, pred)
	}
	check, err := kba.CompilePreds(schema.AttrNames(), preds)
	if err != nil {
		return nil, nil, err
	}
	var probe *deleteProbe
	if eqOK && len(schema.Key) > 0 && len(eq) == len(schema.Key) {
		probe = &deleteProbe{}
		for _, k := range schema.Key {
			v, ok := eq[k]
			if !ok {
				probe = nil
				break
			}
			probe.pos = append(probe.pos, schema.Index(k))
			probe.vals = append(probe.vals, v)
		}
	}
	return check, probe, nil
}

// bindInsertRows resolves an INSERT's rows, substituting bound parameters
// at their placeholder positions and validating each against the target
// column's declared kind.
func bindInsertRows(db *Database, s *sqlpkg.Insert, params []Value) ([]Tuple, error) {
	rel := db.Relation(s.Table)
	if rel == nil {
		return nil, fmt.Errorf("zidian: unknown relation %q", s.Table)
	}
	out := make([]Tuple, len(s.Rows))
	for ri, row := range s.Rows {
		t := make(Tuple, len(row))
		copy(t, row)
		if s.Params != nil {
			for ci, pr := range s.Params[ri] {
				if pr == nil {
					continue
				}
				if pr.Index < 0 || pr.Index >= len(params) {
					return nil, fmt.Errorf("zidian: parameter slot %d out of range (have %d)", pr.Index, len(params))
				}
				kind := relation.KindNull
				if ci < len(rel.Schema.Attrs) {
					kind = rel.Schema.Attrs[ci].Kind
				}
				v, err := relation.CoerceKind(params[pr.Index], kind)
				if err != nil {
					return nil, fmt.Errorf("zidian: parameter %d: %w", pr.Index, err)
				}
				t[ci] = v
			}
		}
		out[ri] = t
	}
	return out, nil
}

// DesignSchema runs T2B: it extracts QCS access patterns from the workload
// queries and designs a BaaV schema under the storage budget (0 = no
// budget). With ensurePreserving, a primary-key schema per relation is
// added so the result is data preserving.
func DesignSchema(db *Database, workloadSQL []string, budget int64, ensurePreserving bool) (*BaaVSchema, *DesignReport, error) {
	var queries []*ra.Query
	for _, src := range workloadSQL {
		q, err := ra.Parse(src, db)
		if err != nil {
			return nil, nil, err
		}
		queries = append(queries, q)
	}
	d := &qcs.Designer{Rels: baav.RelSchemas(db), Workload: queries}
	return d.Design(db, qcs.Config{Budget: budget, EnsurePreserving: ensurePreserving})
}
